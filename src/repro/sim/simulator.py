"""Fluid discrete-event simulation of phased schedules.

This substrate executes a schedule instead of just evaluating Equation (3)
on it: every site runs its resident clones under a
:class:`~repro.sim.policies.SharingPolicy`, producing per-clone traces and
piecewise-constant rate intervals whose feasibility (no resource above
unit capacity) and work conservation are checked as the simulation
advances.  Phases are synchronized globally, as in TREESCHEDULE: phase
``k+1`` starts when the slowest site of phase ``k`` finishes.

Under :attr:`SharingPolicy.OPTIMAL_STRETCH` the simulated response time
reproduces the analytic model *exactly* (this is asserted by the
validation tests); under :attr:`FAIR_SHARE` and :attr:`SERIAL` it bounds
the model from above, quantifying the optimism of assumptions A2/A3.

Heterogeneous clusters: a site of capacity ``c``
(:attr:`~repro.core.site.Site.capacity`) executes every resource ``c``
times faster.  The fault-free per-policy simulators run in unit-capacity
time and :func:`simulate_site` rescales their events by ``1/c``; the
fault event loop composes ``c`` directly with the fault slowdown factor.
Recorded rate intervals stay in utilization units (fraction of the
site's own budget).  At ``c = 1.0`` every path is byte-identical to the
homogeneous simulator.

Fault injection: every entry point accepts an optional
:class:`~repro.sim.faults.FaultPlan` (or per-site
:class:`~repro.sim.faults.SiteFaults`).  Sites untouched by the plan run
the exact unperturbed code path — a zero-fault plan is byte-identical to
no plan at all (golden-tested) — while faulty sites go through a
generalized event loop that honours capacity slowdowns, work-estimate
skew, straggler start delays and whole-site failures with
restart-after-delay recovery, for all three sharing policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.core.resource_model import ConvexCombinationOverlap
from repro.core.schedule import PhasedSchedule, Schedule
from repro.core.site import Site
from repro.core.work_vector import WorkVector
from repro.obs.tracer import current_tracer
from repro.sim.events import CloneTrace, RateInterval
from repro.sim.faults import FaultPlan, FaultReport, SiteFaults
from repro.sim.policies import SharingPolicy

__all__ = [
    "SiteSimulation",
    "PhaseSimulation",
    "SimulationResult",
    "simulate_site",
    "simulate_schedule",
    "simulate_phased",
]

_EPS = 1e-9


@dataclass
class SiteSimulation:
    """Simulation outcome for one site within one phase.

    Attributes
    ----------
    site_index:
        The simulated site.
    completion_time:
        Time (relative to phase start) at which the last clone finished.
    analytic_time:
        The Equation (2) site time, for comparison.
    traces:
        Per-clone execution records.
    intervals:
        Piecewise-constant rate intervals (empty for idle sites).
    """

    site_index: int
    completion_time: float
    analytic_time: float
    traces: list[CloneTrace] = field(default_factory=list)
    intervals: list[RateInterval] = field(default_factory=list)

    @property
    def deviation(self) -> float:
        """Relative excess of simulated over analytic time (0 when idle)."""
        if self.analytic_time <= 0.0:
            return 0.0
        return (self.completion_time - self.analytic_time) / self.analytic_time


@dataclass
class PhaseSimulation:
    """Simulation outcome for one synchronized phase."""

    sites: list[SiteSimulation]
    makespan: float
    analytic_makespan: float


@dataclass
class SimulationResult:
    """Simulation outcome for a full phased schedule.

    Attributes
    ----------
    policy:
        The sharing policy that was simulated.
    phases:
        Per-phase outcomes, in execution order.
    response_time:
        Total simulated response time (sum of phase makespans, since
        phases are globally synchronized).
    analytic_response_time:
        The Equation (3) response time of the same schedule.
    fault_report:
        Per-category fault attribution when the simulation ran under a
        :class:`~repro.sim.faults.FaultPlan`; ``None`` otherwise.
    """

    policy: SharingPolicy
    phases: list[PhaseSimulation]
    response_time: float
    analytic_response_time: float
    fault_report: FaultReport | None = None

    @property
    def slowdown(self) -> float:
        """``simulated / analytic`` response-time ratio (1.0 when equal).

        A degenerate schedule (zero analytic time) with positive
        simulated time is *infinitely* slower, not "in agreement": the
        ratio is ``inf`` in that case, so disagreement on degenerate
        schedules cannot masquerade as a perfect match.
        """
        if self.analytic_response_time <= 0.0:
            return 1.0 if self.response_time <= 0.0 else math.inf
        return self.response_time / self.analytic_response_time


def _clone_states(site: Site) -> list[dict]:
    states = []
    for clone in site.clones:
        t = clone.t_seq
        rates = tuple((c / t if t > 0 else 0.0) for c in clone.work.components)
        states.append(
            {
                "label": f"{clone.operator}#{clone.clone_index}",
                "operator": clone.operator,
                "clone_index": clone.clone_index,
                "t_seq": t,
                "rates": rates,
                "remaining": t,
            }
        )
    return states


def _check_feasible(
    resource_rates: tuple[float, ...], site_index: int, limit: float = 1.0
) -> None:
    for i, r in enumerate(resource_rates):
        if r > limit * (1.0 + 1e-6):
            raise SimulationError(
                f"site {site_index}: resource {i} driven at rate {r:.6f} > "
                f"{limit:g}"
            )


def _simulate_stretch(site: Site) -> SiteSimulation:
    """OPTIMAL_STRETCH: every clone finishes exactly at T* (Equation 2).

    Runs in unit-capacity time; :func:`simulate_site` rescales for
    heterogeneous sites.
    """
    analytic = site.unit_t_site()
    states = _clone_states(site)
    t_star = analytic
    traces = []
    agg = [0.0] * site.d
    for s in states:
        # Stretch factor T_c / T*; a zero-work clone completes immediately.
        factor = (s["t_seq"] / t_star) if t_star > 0 else 0.0
        for i, r in enumerate(s["rates"]):
            agg[i] += r * factor
        traces.append(
            CloneTrace(
                operator=s["operator"],
                clone_index=s["clone_index"],
                start=0.0,
                finish=t_star if s["t_seq"] > 0 else 0.0,
                nominal_t_seq=s["t_seq"],
            )
        )
    rates = tuple(agg)
    _check_feasible(rates, site.index)
    intervals = []
    if states and t_star > 0:
        intervals.append(
            RateInterval(
                start=0.0,
                end=t_star,
                active=tuple(s["label"] for s in states),
                throttle=min(
                    (s["t_seq"] / t_star for s in states if s["t_seq"] > 0),
                    default=1.0,
                ),
                resource_rates=rates,
            )
        )
    return SiteSimulation(
        site_index=site.index,
        completion_time=t_star if states else 0.0,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


def _simulate_fair_share(site: Site) -> SiteSimulation:
    """FAIR_SHARE: equal throttle for all active clones, event-driven.

    Runs in unit-capacity time; :func:`simulate_site` rescales for
    heterogeneous sites.
    """
    analytic = site.unit_t_site()
    states = _clone_states(site)
    active = [s for s in states if s["t_seq"] > 0]
    traces = [
        CloneTrace(
            operator=s["operator"],
            clone_index=s["clone_index"],
            start=0.0,
            finish=0.0,
            nominal_t_seq=0.0,
        )
        for s in states
        if s["t_seq"] <= 0
    ]
    intervals: list[RateInterval] = []
    now = 0.0
    guard = 0
    while active:
        guard += 1
        if guard > 10_000 + 10 * len(states):
            raise SimulationError(
                f"site {site.index}: fair-share simulation failed to converge"
            )
        congestion = [0.0] * site.d
        for s in active:
            for i, r in enumerate(s["rates"]):
                congestion[i] += r
        peak = max(congestion, default=0.0)
        throttle = 1.0 if peak <= 1.0 else 1.0 / peak
        # Next completion under the common throttle.
        dt = min(s["remaining"] / throttle for s in active)
        end = now + dt
        rates = tuple(c * throttle for c in congestion)
        _check_feasible(rates, site.index)
        # A zero-length step (a clone whose remaining work rounds to
        # nothing) still completes clones below, but must not emit a
        # degenerate interval: downstream feasibility/duration audits
        # treat intervals as strictly positive spans.
        if dt > 0.0:
            intervals.append(
                RateInterval(
                    start=now,
                    end=end,
                    active=tuple(s["label"] for s in active),
                    throttle=throttle,
                    resource_rates=rates,
                )
            )
        still_active = []
        for s in active:
            s["remaining"] -= throttle * dt
            if s["remaining"] <= _EPS * max(1.0, s["t_seq"]):
                traces.append(
                    CloneTrace(
                        operator=s["operator"],
                        clone_index=s["clone_index"],
                        start=0.0,
                        finish=end,
                        nominal_t_seq=s["t_seq"],
                    )
                )
            else:
                still_active.append(s)
        active = still_active
        now = end
    return SiteSimulation(
        site_index=site.index,
        completion_time=now,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


def _simulate_serial(site: Site) -> SiteSimulation:
    """SERIAL: clones run one after another, longest first.

    Runs in unit-capacity time; :func:`simulate_site` rescales for
    heterogeneous sites.
    """
    analytic = site.unit_t_site()
    states = sorted(
        _clone_states(site), key=lambda s: (-s["t_seq"], s["label"])
    )
    traces = []
    intervals = []
    now = 0.0
    for s in states:
        end = now + s["t_seq"]
        traces.append(
            CloneTrace(
                operator=s["operator"],
                clone_index=s["clone_index"],
                start=now,
                finish=end,
                nominal_t_seq=s["t_seq"],
            )
        )
        if s["t_seq"] > 0:
            intervals.append(
                RateInterval(
                    start=now,
                    end=end,
                    active=(s["label"],),
                    throttle=1.0,
                    resource_rates=s["rates"],
                )
            )
        now = end
    return SiteSimulation(
        site_index=site.index,
        completion_time=now,
        analytic_time=analytic,
        traces=traces,
        intervals=intervals,
    )


_POLICY_DISPATCH = {
    SharingPolicy.OPTIMAL_STRETCH: _simulate_stretch,
    SharingPolicy.FAIR_SHARE: _simulate_fair_share,
    SharingPolicy.SERIAL: _simulate_serial,
}


def _scale_site_sim(sim: SiteSimulation, capacity: float) -> SiteSimulation:
    """Rescale a unit-capacity simulation to a site of speed ``capacity``.

    A capacity-``c`` site drives every resource ``c`` times faster, so
    every event lands at ``t / c``.  Recorded ``resource_rates`` stay in
    *utilization* units (fraction of the site's own budget) — running
    ``c``× faster on a ``c``× budget leaves utilization unchanged, so
    :meth:`RateInterval.is_feasible`'s ``<= 1`` audit remains the right
    check.  Callers skip this entirely at ``c == 1.0``, keeping the
    homogeneous simulation byte-identical.
    """
    sim.completion_time /= capacity
    sim.analytic_time /= capacity
    sim.traces = [
        CloneTrace(
            operator=t.operator,
            clone_index=t.clone_index,
            start=t.start / capacity,
            finish=t.finish / capacity,
            nominal_t_seq=t.nominal_t_seq,
        )
        for t in sim.traces
    ]
    sim.intervals = [
        RateInterval(
            start=iv.start / capacity,
            end=iv.end / capacity,
            active=iv.active,
            throttle=iv.throttle,
            resource_rates=iv.resource_rates,
        )
        for iv in sim.intervals
    ]
    return sim


# ----------------------------------------------------------------------
# Fault-perturbed execution
# ----------------------------------------------------------------------
# Faulty sites run a generalized event loop instead of the closed-form
# per-policy simulators above: state is still piecewise constant, but
# events now include straggler releases, the failure instant, and the
# recovery instant in addition to clone completions.  Sites without
# faults never enter this code, which is what keeps the zero-fault path
# byte-identical to the plain simulator.


def _faulty_clone_states(site: Site, faults: SiteFaults) -> list[dict]:
    """Clone states with skewed work applied and release times attached.

    A skewed clone's stand-alone time is re-derived from its *actual*
    work vector under EA2 with the plan's epsilon, which preserves the
    Section 4.1 bound ``l(W) <= T_seq <= sum(W)`` by construction
    (:meth:`OverlapModel.t_seq` validates it).
    """
    overlap = ConvexCombinationOverlap(faults.epsilon)
    states = []
    for clone in site.clones:
        label = f"{clone.operator}#{clone.clone_index}"
        fault = faults.clones.get(label)
        components = clone.work.components
        t_actual = clone.t_seq
        if fault is not None and fault.work_multipliers is not None:
            if len(fault.work_multipliers) != clone.work.d:
                raise SimulationError(
                    f"site {site.index}: skew for {label} has "
                    f"{len(fault.work_multipliers)} components; clone has {clone.work.d}"
                )
            actual = WorkVector(
                [c * m for c, m in zip(components, fault.work_multipliers)]
            )
            t_actual = overlap.t_seq(actual)
            components = actual.components
        rates = tuple((c / t_actual if t_actual > 0 else 0.0) for c in components)
        states.append(
            {
                "label": label,
                "operator": clone.operator,
                "clone_index": clone.clone_index,
                "t_seq": t_actual,
                "scheduled_t_seq": clone.t_seq,
                "rates": rates,
                "remaining": t_actual,
                "release": fault.straggler_delay if fault is not None else 0.0,
                "start": None,
                "done": False,
            }
        )
    return states


def _allocate_rates(
    policy: SharingPolicy,
    active: list[dict],
    capacity: float,
    d: int,
    serial_rank: dict[str, int],
) -> list[float]:
    """Per-clone progress speeds for one piecewise-constant segment.

    ``capacity`` is the (possibly degraded) uniform resource-capacity
    factor: a slowdown ``s`` scales *every* progress speed by ``s``, so
    in isolation it multiplies every duration by exactly ``1/s`` (the
    EA2 stand-alone time models imperfect overlap, which a uniformly
    slower site preserves).  The three policies generalize their
    fault-free definitions: SERIAL runs one clone at the capacity
    factor, FAIR_SHARE applies one common throttle, and OPTIMAL_STRETCH
    finishes every active clone simultaneously at the earliest feasible
    horizon ``max(max_c rem_c, max_i sum_c rate_c[i] * rem_c) /
    capacity`` (the Equation 2 horizon when nothing is degraded).
    """
    if policy is SharingPolicy.SERIAL:
        runner = min(active, key=lambda s: serial_rank[s["label"]])
        return [capacity if s is runner else 0.0 for s in active]
    if policy is SharingPolicy.FAIR_SHARE:
        congestion = [0.0] * d
        for s in active:
            for i, r in enumerate(s["rates"]):
                congestion[i] += r
        throttle = 1.0
        for c in congestion:
            if c > 1.0:
                throttle = min(throttle, 1.0 / c)
        return [throttle * capacity] * len(active)
    horizon = max(s["remaining"] for s in active)
    for i in range(d):
        demand = math.fsum(s["rates"][i] * s["remaining"] for s in active)
        horizon = max(horizon, demand)
    horizon /= capacity
    if horizon <= 0.0:
        return [1.0] * len(active)
    return [s["remaining"] / horizon for s in active]


def _run_site_with_faults(
    site: Site, policy: SharingPolicy, faults: SiteFaults
) -> tuple[SiteSimulation, float]:
    """Event-driven simulation of one site under a fault bundle.

    Returns the site simulation and the stand-alone-seconds of progress
    destroyed (and later re-run) by a failure.

    Failure semantics: at ``fail_at`` every *started, unfinished* clone
    loses its progress (its remaining work resets to the full actual
    stand-alone time); clones that completed at or before the failure
    instant keep their materialized results; the site is down for
    ``restart_delay`` and then re-runs the lost work.
    """
    analytic = site.t_site()
    states = _faulty_clone_states(site, faults)
    slowdown = faults.slowdown if faults.slowdown is not None else 1.0
    if slowdown <= 0.0:
        raise SimulationError(f"site {site.index}: slowdown factor must be > 0")
    # The site's own speed composes with the fault slowdown: a capacity-2
    # site degraded to half speed progresses at factor 1.0.  Multiplying
    # by the default capacity 1.0 is bit-exact, so homogeneous fault runs
    # are unchanged.
    capacity = site.capacity * slowdown
    fail_at = faults.fail_at
    restart_delay = faults.restart_delay
    serial_rank = {
        s["label"]: i
        for i, s in enumerate(
            sorted(states, key=lambda s: (-s["scheduled_t_seq"], s["label"]))
        )
    }
    traces: list[CloneTrace] = []
    intervals: list[RateInterval] = []
    work_rerun = 0.0
    now = 0.0
    # Zero-work clones complete the instant they are released.
    for s in states:
        if s["t_seq"] <= 0.0:
            s["done"] = True
            traces.append(
                CloneTrace(
                    operator=s["operator"],
                    clone_index=s["clone_index"],
                    start=s["release"],
                    finish=s["release"],
                    nominal_t_seq=0.0,
                )
            )
    guard = 0
    limit = 10_000 + 10 * len(states)
    while True:
        guard += 1
        if guard > limit:
            raise SimulationError(
                f"site {site.index}: faulty simulation failed to converge"
            )
        pending = [s for s in states if not s["done"]]
        if not pending:
            break
        if fail_at is not None and now >= fail_at:
            # The failure fires: in-flight progress is lost and re-run.
            for s in pending:
                if s["start"] is not None:
                    lost = s["t_seq"] - s["remaining"]
                    if lost > 0.0:
                        work_rerun += lost
                        s["remaining"] = s["t_seq"]
            recovered = now + restart_delay
            if restart_delay > 0.0:
                intervals.append(
                    RateInterval(
                        start=now,
                        end=recovered,
                        active=(),
                        throttle=0.0,
                        resource_rates=(0.0,) * site.d,
                    )
                )
            now = recovered
            fail_at = None
            continue
        boundaries = [s["release"] for s in pending if s["release"] > now]
        if fail_at is not None and fail_at > now:
            boundaries.append(fail_at)
        active = [s for s in pending if s["release"] <= now]
        if not active:
            if not boundaries:
                raise SimulationError(
                    f"site {site.index}: no runnable clone and no future event"
                )
            now = min(boundaries)
            continue
        for s in active:
            if s["start"] is None:
                s["start"] = now
        speeds = _allocate_rates(policy, active, capacity, site.d, serial_rank)
        dt = min(
            (s["remaining"] / v for s, v in zip(active, speeds) if v > 0.0),
            default=math.inf,
        )
        if boundaries:
            dt = min(dt, min(boundaries) - now)
        if not math.isfinite(dt) or dt <= 0.0:
            raise SimulationError(
                f"site {site.index}: faulty simulation stalled at t={now}"
            )
        end = now + dt
        agg = [0.0] * site.d
        for s, v in zip(active, speeds):
            for i, r in enumerate(s["rates"]):
                agg[i] += r * v
        rates = tuple(agg)
        # Budget is the site's own capacity (the fault slowdown wastes
        # part of it; it does not shrink what feasibility allows).
        _check_feasible(rates, site.index, site.capacity)
        if site.capacity != 1.0:
            # Record utilization (fraction of this site's budget) so the
            # RateInterval <= 1 audit stays meaningful on fast sites.
            rates = tuple(r / site.capacity for r in rates)
        running = tuple(s["label"] for s, v in zip(active, speeds) if v > 0.0)
        if running:
            intervals.append(
                RateInterval(
                    start=now,
                    end=end,
                    active=running,
                    throttle=min(v for v in speeds if v > 0.0),
                    resource_rates=rates,
                )
            )
        for s, v in zip(active, speeds):
            if v <= 0.0:
                continue
            s["remaining"] -= v * dt
            if s["remaining"] <= _EPS * max(1.0, s["t_seq"]):
                s["done"] = True
                s["remaining"] = 0.0
                traces.append(
                    CloneTrace(
                        operator=s["operator"],
                        clone_index=s["clone_index"],
                        start=s["start"],
                        finish=end,
                        nominal_t_seq=s["t_seq"],
                    )
                )
        now = end
    completion = max((t.finish for t in traces), default=now)
    return (
        SiteSimulation(
            site_index=site.index,
            completion_time=completion,
            analytic_time=analytic,
            traces=traces,
            intervals=intervals,
        ),
        work_rerun,
    )


def _attribute_site_faults(
    site: Site, policy: SharingPolicy, faults: SiteFaults
) -> tuple[SiteSimulation, FaultReport]:
    """Simulate a faulty site and split its time lost per fault kind.

    The attribution ladder re-simulates with progressively more fault
    kinds enabled (skew -> slowdown -> stragglers -> failure) and
    charges each kind the site-completion-time delta it causes.  Only
    rungs whose kind is present run, so a skew-only site costs two
    simulations, not five.  Skew deltas can be negative (overestimated
    work finishes early); the remaining deltas are non-negative.
    """
    report = FaultReport()
    sim, _ = _run_site_with_faults(site, policy, faults.restricted())
    prev = sim.completion_time
    if faults.has_skew:
        sim, _ = _run_site_with_faults(site, policy, faults.restricted(skew=True))
        report.time_lost_skew = sim.completion_time - prev
        prev = sim.completion_time
    if faults.slowdown is not None:
        sim, _ = _run_site_with_faults(
            site, policy, faults.restricted(skew=True, slowdown=True)
        )
        report.time_lost_slowdown = sim.completion_time - prev
        prev = sim.completion_time
    if faults.has_stragglers:
        sim, _ = _run_site_with_faults(
            site,
            policy,
            faults.restricted(skew=True, slowdown=True, straggler=True),
        )
        report.time_lost_straggler = sim.completion_time - prev
        prev = sim.completion_time
    if faults.fail_at is not None:
        sim, rerun = _run_site_with_faults(site, policy, faults)
        report.time_lost_failure = sim.completion_time - prev
        report.work_rerun = rerun
    return sim, report


def simulate_site(
    site: Site, policy: SharingPolicy, *, faults: SiteFaults | None = None
) -> SiteSimulation:
    """Simulate one site's clones under ``policy``.

    Checks rate feasibility throughout and work conservation at the end
    (every clone's trace spans enough stretched time to complete its
    nominal work).

    With a non-empty ``faults`` bundle the site runs the perturbed event
    loop instead; the Equation (2) floor check is skipped there because
    downward work skew legitimately finishes below the *scheduled*
    analytic time.
    """
    if faults is not None and not faults.is_empty:
        result, _ = _run_site_with_faults(site, policy, faults)
        if result.completion_time < -_EPS:
            raise SimulationError(f"site {site.index}: negative completion time")
        return result
    result = _POLICY_DISPATCH[policy](site)
    if site.capacity != 1.0:
        result = _scale_site_sim(result, site.capacity)
    # Work conservation: each finished clone ran for >= its nominal time
    # scaled by the throttles it received — guaranteed by construction for
    # these policies; assert the cheap invariant finish >= 0 and
    # completion >= analytic floor for non-ideal policies.
    if result.completion_time < -_EPS:
        raise SimulationError(f"site {site.index}: negative completion time")
    if result.completion_time < result.analytic_time - 1e-6 * max(
        1.0, result.analytic_time
    ):
        raise SimulationError(
            f"site {site.index}: simulated time {result.completion_time} "
            f"below the Equation (2) floor {result.analytic_time}"
        )
    return result


def _simulate_schedule_with_plan(
    schedule: Schedule, policy: SharingPolicy, plan: FaultPlan, phase_index: int
) -> tuple[PhaseSimulation, FaultReport]:
    """One phase under a fault plan, with per-kind time attribution."""
    report = FaultReport()
    sims = []
    for site in schedule.sites:
        faults = plan.for_site(phase_index, site.index)
        if faults is None or faults.is_empty:
            sims.append(simulate_site(site, policy))
        else:
            sim, site_report = _attribute_site_faults(site, policy, faults)
            report.merge(site_report)
            sims.append(sim)
    makespan = max((s.completion_time for s in sims), default=0.0)
    return (
        PhaseSimulation(
            sites=sims, makespan=makespan, analytic_makespan=schedule.makespan()
        ),
        report,
    )


def simulate_schedule(
    schedule: Schedule,
    policy: SharingPolicy,
    *,
    plan: FaultPlan | None = None,
    phase_index: int = 0,
) -> PhaseSimulation:
    """Simulate one phase (all sites run concurrently from time zero).

    Pass a :class:`~repro.sim.faults.FaultPlan` (and the phase's index
    within it) to run the phase under perturbation; fault-free sites
    still take the exact unperturbed code path.
    """
    if plan is not None and not plan.is_empty:
        phase, _ = _simulate_schedule_with_plan(schedule, policy, plan, phase_index)
        return phase
    sites = [simulate_site(site, policy) for site in schedule.sites]
    makespan = max((s.completion_time for s in sites), default=0.0)
    return PhaseSimulation(
        sites=sites, makespan=makespan, analytic_makespan=schedule.makespan()
    )


def simulate_phased(
    phased: PhasedSchedule,
    policy: SharingPolicy = SharingPolicy.OPTIMAL_STRETCH,
    *,
    plan: FaultPlan | None = None,
) -> SimulationResult:
    """Simulate a full phased schedule with a global barrier per phase.

    With a :class:`~repro.sim.faults.FaultPlan`, every phase runs under
    the plan's perturbations and the result carries a
    :class:`~repro.sim.faults.FaultReport` attributing the time lost to
    slowdowns vs. skew vs. stragglers vs. failures.  A zero-fault plan
    produces phases byte-identical to ``plan=None`` (golden-tested),
    plus an all-zero report — the layer is pure extension.
    """
    tracer = current_tracer()
    faulted = plan is not None
    with tracer.span(
        "simulate_phased",
        policy=policy.value,
        num_phases=phased.num_phases,
        faulted=faulted,
    ) as run_span:
        report = None if plan is None else FaultReport.from_counts(plan.counts())
        phases = []
        for k, schedule in enumerate(phased.phases):
            with tracer.span("simulate_phase", index=k) as phase_span:
                if plan is None:
                    phase = simulate_schedule(schedule, policy)
                else:
                    phase, phase_report = _simulate_schedule_with_plan(
                        schedule, policy, plan, k
                    )
                    assert report is not None
                    report.merge(phase_report)
                if phase_span is not None:
                    phase_span.attributes["makespan"] = phase.makespan
            phases.append(phase)
        response = math.fsum(p.makespan for p in phases)
        if run_span is not None:
            run_span.attributes["response_time"] = response
        return SimulationResult(
            policy=policy,
            phases=phases,
            response_time=response,
            analytic_response_time=phased.response_time(),
            fault_report=report,
        )
