"""Deterministic fault injection for the fluid execution simulator.

The paper's analytic model (Equations 2/3) rests on idealized runtime
assumptions: resources are perfectly preemptable at constant capacity
(A2), demand is uniform over each clone's execution (A3), and the
compile-time work vectors are exact.  This module perturbs all three in
a controlled, reproducible way so the experiments can ask how far each
scheduler's analytic promise survives contact with a misbehaving system:

* **site slowdowns** — a site's resource capacities are scaled by a
  factor below 1.0 for the whole phase (a degraded node; violates the
  constant-capacity half of A2);
* **work-estimate skew** — a clone's *actual* work vector differs
  componentwise from the scheduled one; its stand-alone time is
  re-derived under EA2 so the Section 4.1 bound
  ``l(W) <= T_seq <= sum(W)`` still holds by construction;
* **stragglers** — a clone's start is delayed within its phase
  (non-uniform availability; violates A3's uniform-progress picture);
* **site failures** — the site goes down at some point during the
  phase, in-flight clones lose their progress, and after a restart
  delay the site re-runs the lost work (finished clones keep their
  materialized results).

Everything is driven by a :class:`FaultSpec` (intensities and severity
ranges) expanded into a concrete :class:`FaultPlan` by a *private*
``random.Random(seed)`` — never the global RNG state — so the same
``(spec, schedule, seed)`` triple always yields the identical plan, and
a zero-intensity spec yields the empty plan (the simulator then takes
its unperturbed code path, byte-identical to a plain simulation).

The module deliberately knows nothing about the simulator internals;
:mod:`repro.sim.simulator` consumes plans and fills in the per-category
time attribution of :class:`FaultReport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.core.schedule import PhasedSchedule

__all__ = [
    "FaultSpec",
    "CloneFault",
    "SiteFaults",
    "FaultPlan",
    "FaultReport",
]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")


def _check_range(
    name: str, bounds: tuple[float, float], *, lo: float, hi: float
) -> None:
    if len(bounds) != 2 or bounds[0] > bounds[1]:
        raise ConfigurationError(f"{name} must be (low, high) with low <= high, got {bounds}")
    if bounds[0] < lo or bounds[1] > hi:
        raise ConfigurationError(f"{name} must lie within [{lo}, {hi}], got {bounds}")


@dataclass(frozen=True)
class FaultSpec:
    """Fault intensities and severity ranges (the *distribution* of faults).

    All probabilities are per injection opportunity: slowdowns and
    failures are drawn once per (phase, site), skew and straggler delays
    once per placed clone.  Severities are drawn uniformly from the
    corresponding range; delay/failure instants are expressed as
    fractions of the site's analytic Equation (2) time so one spec
    scales across schedules of any magnitude.

    Attributes
    ----------
    slowdown_prob, slowdown_range:
        Probability that a site runs a phase degraded, and the range of
        the capacity factor applied to every resource (within ``(0, 1]``).
    skew_prob, skew_range:
        Probability that a clone's actual work deviates from the
        scheduled estimate, and the range of the per-component
        multiplier (strictly positive; values above 1 model
        underestimated work).
    straggler_prob, straggler_delay_range:
        Probability that a clone starts late, and its delay as a
        fraction of the site's analytic time.
    failure_prob, failure_at_range, restart_delay_range:
        Probability that a site fails during a phase, the failure
        instant as a fraction of the site's analytic time, and the
        restart delay as a fraction of the same.
    epsilon:
        EA2 overlap parameter used to re-derive a skewed clone's
        stand-alone time from its actual work vector.
    """

    slowdown_prob: float = 0.0
    slowdown_range: tuple[float, float] = (0.5, 0.9)
    skew_prob: float = 0.0
    skew_range: tuple[float, float] = (0.75, 1.5)
    straggler_prob: float = 0.0
    straggler_delay_range: tuple[float, float] = (0.05, 0.5)
    failure_prob: float = 0.0
    failure_at_range: tuple[float, float] = (0.1, 0.9)
    restart_delay_range: tuple[float, float] = (0.1, 0.5)
    epsilon: float = 0.5

    def __post_init__(self) -> None:
        _check_prob("slowdown_prob", self.slowdown_prob)
        _check_prob("skew_prob", self.skew_prob)
        _check_prob("straggler_prob", self.straggler_prob)
        _check_prob("failure_prob", self.failure_prob)
        _check_prob("epsilon", self.epsilon)
        _check_range("slowdown_range", self.slowdown_range, lo=1e-6, hi=1.0)
        _check_range("skew_range", self.skew_range, lo=1e-6, hi=1e6)
        _check_range(
            "straggler_delay_range", self.straggler_delay_range, lo=0.0, hi=1e6
        )
        _check_range("failure_at_range", self.failure_at_range, lo=0.0, hi=1.0)
        _check_range(
            "restart_delay_range", self.restart_delay_range, lo=0.0, hi=1e6
        )

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever be drawn from this spec."""
        return (
            self.slowdown_prob == 0.0
            and self.skew_prob == 0.0
            and self.straggler_prob == 0.0
            and self.failure_prob == 0.0
        )

    @classmethod
    def none(cls, *, epsilon: float = 0.5) -> "FaultSpec":
        """The zero-fault spec (expands to the empty plan)."""
        return cls(epsilon=epsilon)

    @classmethod
    def at_intensity(cls, intensity: float, *, epsilon: float = 0.5) -> "FaultSpec":
        """A one-knob spec family for the robustness sweep.

        ``intensity = 0`` is the zero-fault spec; ``intensity = 1`` is a
        hostile environment (roughly one fault per site-phase).  The
        per-kind probabilities scale linearly with ``intensity`` while
        the severity ranges stay fixed, so sweeping intensity isolates
        *how often* things go wrong from *how badly*.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ConfigurationError(
                f"fault intensity must lie in [0, 1], got {intensity}"
            )
        return cls(
            slowdown_prob=0.30 * intensity,
            skew_prob=0.40 * intensity,
            straggler_prob=0.25 * intensity,
            failure_prob=0.15 * intensity,
            epsilon=epsilon,
        )


@dataclass(frozen=True)
class CloneFault:
    """Concrete faults drawn for one placed clone.

    Attributes
    ----------
    work_multipliers:
        Per-component multipliers turning the scheduled work vector into
        the actual one, or ``None`` when the estimate was exact.
    straggler_delay:
        Absolute delay (in simulated seconds) before the clone becomes
        runnable within its phase; 0 when the clone starts on time.
    """

    work_multipliers: tuple[float, ...] | None = None
    straggler_delay: float = 0.0

    @property
    def is_empty(self) -> bool:
        return self.work_multipliers is None and self.straggler_delay == 0.0


@dataclass(frozen=True)
class SiteFaults:
    """Concrete faults drawn for one (phase, site) pair.

    Attributes
    ----------
    slowdown:
        Capacity factor in ``(0, 1)`` applied to every resource for the
        whole phase, or ``None`` when the site runs at full capacity.
    fail_at, restart_delay:
        Absolute failure instant and downtime (simulated seconds), or
        ``fail_at=None`` when the site does not fail.  On failure,
        unfinished started clones lose their progress and re-run it
        after the restart.
    clones:
        Per-clone faults keyed by the simulator's ``operator#index``
        label (only labels with a non-empty fault appear).
    epsilon:
        EA2 overlap parameter for re-deriving skewed stand-alone times
        (copied from the spec so a bundle is self-contained).
    """

    slowdown: float | None = None
    fail_at: float | None = None
    restart_delay: float = 0.0
    clones: dict[str, CloneFault] = field(default_factory=dict)
    epsilon: float = 0.5

    @property
    def has_skew(self) -> bool:
        return any(c.work_multipliers is not None for c in self.clones.values())

    @property
    def has_stragglers(self) -> bool:
        return any(c.straggler_delay > 0.0 for c in self.clones.values())

    @property
    def is_empty(self) -> bool:
        return (
            self.slowdown is None
            and self.fail_at is None
            and not self.has_skew
            and not self.has_stragglers
        )

    def restricted(
        self,
        *,
        skew: bool = False,
        slowdown: bool = False,
        straggler: bool = False,
        failure: bool = False,
    ) -> "SiteFaults":
        """A copy keeping only the enabled fault kinds.

        Used by the simulator's attribution ladder: simulating with
        progressively more kinds enabled splits the total time lost into
        per-kind contributions.
        """
        clones = {}
        for label, fault in self.clones.items():
            kept = CloneFault(
                work_multipliers=fault.work_multipliers if skew else None,
                straggler_delay=fault.straggler_delay if straggler else 0.0,
            )
            if not kept.is_empty:
                clones[label] = kept
        return SiteFaults(
            slowdown=self.slowdown if slowdown else None,
            fail_at=self.fail_at if failure else None,
            restart_delay=self.restart_delay if failure else 0.0,
            clones=clones,
            epsilon=self.epsilon,
        )


@dataclass
class FaultPlan:
    """A concrete, fully materialized assignment of faults to a schedule.

    Built from a :class:`FaultSpec` and a seed via :meth:`build`; the
    expansion is a pure function of ``(spec, schedule, seed)`` (no
    global RNG state is read or written), so plans are reproducible
    across processes and worker counts.

    Attributes
    ----------
    spec, seed:
        The generating distribution and seed (kept for provenance).
    sites:
        Non-empty per-(phase, site) fault bundles, keyed by
        ``(phase_index, site_index)``.
    """

    spec: FaultSpec
    seed: int
    sites: dict[tuple[int, int], SiteFaults] = field(default_factory=dict)

    @classmethod
    def build(cls, spec: FaultSpec, phased: PhasedSchedule, seed: int) -> "FaultPlan":
        """Expand ``spec`` over every (phase, site, clone) of ``phased``.

        Iteration order (phases in execution order, sites by index,
        clones in placement order) and draw order (slowdown, failure,
        then per-clone skew and straggler) are fixed, so the plan is a
        deterministic function of its inputs.  Empty sites draw nothing.
        """
        rng = random.Random(seed)
        sites: dict[tuple[int, int], SiteFaults] = {}
        for k, schedule in enumerate(phased.phases):
            for site in schedule.sites:
                if site.is_empty():
                    continue
                t_ref = site.t_site()
                slowdown = None
                if rng.random() < spec.slowdown_prob:
                    slowdown = rng.uniform(*spec.slowdown_range)
                fail_at = None
                restart_delay = 0.0
                if rng.random() < spec.failure_prob and t_ref > 0.0:
                    fail_at = rng.uniform(*spec.failure_at_range) * t_ref
                    restart_delay = rng.uniform(*spec.restart_delay_range) * t_ref
                clones: dict[str, CloneFault] = {}
                for clone in site.clones:
                    multipliers = None
                    if rng.random() < spec.skew_prob:
                        multipliers = tuple(
                            rng.uniform(*spec.skew_range)
                            for _ in range(clone.work.d)
                        )
                    delay = 0.0
                    if rng.random() < spec.straggler_prob and t_ref > 0.0:
                        delay = rng.uniform(*spec.straggler_delay_range) * t_ref
                    fault = CloneFault(
                        work_multipliers=multipliers, straggler_delay=delay
                    )
                    if not fault.is_empty:
                        clones[f"{clone.operator}#{clone.clone_index}"] = fault
                bundle = SiteFaults(
                    slowdown=slowdown,
                    fail_at=fail_at,
                    restart_delay=restart_delay,
                    clones=clones,
                    epsilon=spec.epsilon,
                )
                if not bundle.is_empty:
                    sites[(k, site.index)] = bundle
        return cls(spec=spec, seed=seed, sites=sites)

    def for_site(self, phase_index: int, site_index: int) -> SiteFaults | None:
        """The fault bundle for one (phase, site), or ``None``."""
        return self.sites.get((phase_index, site_index))

    def reschedule_deltas(self):
        """Per-phase repair deltas for this plan's site *failures*.

        Maps each phase index with at least one failing site to a
        ``(failure, recovery)`` pair of
        :class:`~repro.core.reschedule.ScheduleDelta`: the failure delta
        removes the failing sites (their clones are displaced onto the
        survivors), the recovery delta restores them after the restart.
        Feeding the failure delta to
        :func:`repro.engine.reschedule.reschedule` yields the repaired
        placement an executor would switch to instead of waiting out the
        restart — the simulator's re-run accounting and this repair path
        describe the same injected events, so robustness sweeps can
        compare "wait for restart" against "reschedule around the
        failure" on identical fault draws.

        Site order within a delta is ascending, and phases are emitted
        in execution order, so the mapping is as deterministic as the
        plan itself.
        """
        from repro.core.reschedule import ScheduleDelta

        by_phase: dict[int, list[int]] = {}
        for (phase_index, site_index), bundle in self.sites.items():
            if bundle.fail_at is not None:
                by_phase.setdefault(phase_index, []).append(site_index)
        deltas: dict[int, tuple[ScheduleDelta, ScheduleDelta]] = {}
        for phase_index in sorted(by_phase):
            failed = tuple(sorted(by_phase[phase_index]))
            deltas[phase_index] = (
                ScheduleDelta(remove_sites=failed, phase_index=phase_index),
                ScheduleDelta(restore_sites=failed, phase_index=phase_index),
            )
        return deltas

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (zero-fault identity path)."""
        return not self.sites

    def counts(self) -> dict[str, int]:
        """Number of injected faults by kind (plan-level, pre-simulation)."""
        slowdowns = skews = stragglers = failures = 0
        for bundle in self.sites.values():
            if bundle.slowdown is not None:
                slowdowns += 1
            if bundle.fail_at is not None:
                failures += 1
            for fault in bundle.clones.values():
                if fault.work_multipliers is not None:
                    skews += 1
                if fault.straggler_delay > 0.0:
                    stragglers += 1
        return {
            "slowdowns": slowdowns,
            "skews": skews,
            "stragglers": stragglers,
            "failures": failures,
        }


@dataclass
class FaultReport:
    """Per-category attribution of a faulty simulation's time lost.

    Counts come from the plan (what was injected); the ``time_lost_*``
    fields are filled by the simulator's attribution ladder: for every
    faulty site it re-simulates with progressively more fault kinds
    enabled (skew, then slowdown, then stragglers, then failure) and
    charges each kind the site-completion-time delta it causes.  Skew
    can be *negative* (overestimated work finishes early); the other
    categories are non-negative.

    ``work_rerun`` totals the stand-alone-seconds of progress that
    failures destroyed and the recovery re-executed.
    """

    slowdowns: int = 0
    skews: int = 0
    stragglers: int = 0
    failures: int = 0
    time_lost_slowdown: float = 0.0
    time_lost_skew: float = 0.0
    time_lost_straggler: float = 0.0
    time_lost_failure: float = 0.0
    work_rerun: float = 0.0

    @property
    def faults_injected(self) -> int:
        """Total faults of all kinds the plan injected."""
        return self.slowdowns + self.skews + self.stragglers + self.failures

    @property
    def total_time_lost(self) -> float:
        """Net site-seconds lost across all categories."""
        return (
            self.time_lost_slowdown
            + self.time_lost_skew
            + self.time_lost_straggler
            + self.time_lost_failure
        )

    def merge(self, other: "FaultReport") -> None:
        """Fold another report's counts and attributions into this one."""
        self.slowdowns += other.slowdowns
        self.skews += other.skews
        self.stragglers += other.stragglers
        self.failures += other.failures
        self.time_lost_slowdown += other.time_lost_slowdown
        self.time_lost_skew += other.time_lost_skew
        self.time_lost_straggler += other.time_lost_straggler
        self.time_lost_failure += other.time_lost_failure
        self.work_rerun += other.work_rerun

    @classmethod
    def from_counts(cls, counts: dict[str, int]) -> "FaultReport":
        """Seed a report with a plan's injection counts."""
        return cls(
            slowdowns=counts.get("slowdowns", 0),
            skews=counts.get("skews", 0),
            stragglers=counts.get("stragglers", 0),
            failures=counts.get("failures", 0),
        )

