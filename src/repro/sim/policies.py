"""Resource-sharing policies for the fluid execution simulator.

The analytic model of Section 5.2 (Equation 2) assumes an *ideal*
preemptive scheduler at every site: resources are time-sliced at zero
overhead (A2) and each clone's demand is uniform over its execution (A3),
so all clones at a site finish by ``max{max T_seq, l(work)}``.  The
simulator makes that assumption executable and contrastable:

* :attr:`SharingPolicy.OPTIMAL_STRETCH` — the idealized scheduler the
  analysis assumes.  Each clone is stretched to finish exactly at
  ``T* = max{max_c T_c, l(work)}``, i.e. clone ``c`` runs at constant
  progress rate ``T_c / T*``.  Feasible because per-resource consumption
  is then ``load[i] / T* <= 1``; site completion matches Equation (2)
  exactly.
* :attr:`SharingPolicy.FAIR_SHARE` — a plausible real scheduler: all
  active clones progress at one common throttle
  ``x = min(1, 1 / max_i sum_c rate_c[i])``, recomputed whenever a clone
  finishes.  Short clones finish early, which can leave capacity idle that
  the stretch policy would have pre-allocated; completion is never below
  Equation (2) and quantifies how optimistic assumptions A2/A3 are.
* :attr:`SharingPolicy.SERIAL` — no time-sharing at all: clones run one
  after another, completing at ``sum_c T_c``.  The "previous approaches"
  strawman: the value of resource sharing is the gap between SERIAL and
  the other two.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["SharingPolicy"]


class SharingPolicy(Enum):
    """How a site's preemptable resources are shared among clones."""

    #: Ideal deadline-proportional stretching (matches Equation 2 exactly).
    OPTIMAL_STRETCH = "optimal_stretch"
    #: Equal-throttle processor sharing (realistic, >= Equation 2).
    FAIR_SHARE = "fair_share"
    #: One clone at a time (no sharing; upper envelope).
    SERIAL = "serial"
