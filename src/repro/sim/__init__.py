"""Execution-simulator substrate: fluid simulation of multi-resource sites.

Executes schedules under explicit resource-sharing policies instead of
merely evaluating Equation (3), validating the paper's analytic model
(OPTIMAL_STRETCH reproduces it exactly) and quantifying its idealization
(FAIR_SHARE, SERIAL).
"""

from repro.sim.events import CloneTrace, RateInterval
from repro.sim.faults import (
    CloneFault,
    FaultPlan,
    FaultReport,
    FaultSpec,
    SiteFaults,
)
from repro.sim.policies import SharingPolicy
from repro.sim.preemptability import (
    PreemptabilityModel,
    simulate_phased_degraded,
    simulate_site_degraded,
)
from repro.sim.simulator import (
    PhaseSimulation,
    SimulationResult,
    SiteSimulation,
    simulate_phased,
    simulate_schedule,
    simulate_site,
)
from repro.sim.validate import (
    PolicyComparison,
    sharing_policy_report,
    validate_phased_schedule,
    validate_schedule_result,
)

__all__ = [
    "SharingPolicy",
    "CloneTrace",
    "RateInterval",
    "FaultSpec",
    "CloneFault",
    "SiteFaults",
    "FaultPlan",
    "FaultReport",
    "SiteSimulation",
    "PhaseSimulation",
    "SimulationResult",
    "simulate_site",
    "simulate_schedule",
    "simulate_phased",
    "PolicyComparison",
    "validate_phased_schedule",
    "validate_schedule_result",
    "sharing_policy_report",
    "PreemptabilityModel",
    "simulate_site_degraded",
    "simulate_phased_degraded",
]
