"""Parallel, instrumented evaluation of experiment sweep points.

A figure regeneration is an embarrassingly parallel grid: every
``(algorithm, workload, P, f, epsilon, parameters)`` coordinate is
independent of every other.  :class:`ParallelRunner` fans a list of
:class:`SweepPoint` coordinates over a process pool and returns the
values in input order.

Determinism: a sweep point *fully* determines its value.  Workloads are
drawn from a seeded generator and cached per process
(:func:`repro.experiments.runner.prepare_workload`), and scheduling is
deterministic, so the result list is bit-identical for any worker count
— ``workers=4`` is purely a wall-clock optimization.  ``workers=1``
short-circuits the pool entirely and evaluates inline (no fork, easier
debugging, no pickling requirements on custom parameters).

Instrumentation: pass a :class:`~repro.engine.metrics.MetricsRecorder`
to collect evaluated-point counts and wall-clock totals; per-point
timings are recorded under ``point_seconds``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import get_algorithm
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.experiments.runner import average_response_time, prepare_workload

__all__ = ["SweepPoint", "ParallelRunner", "evaluate_point"]


@dataclass(frozen=True)
class SweepPoint:
    """One coordinate of an experiment grid.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (resolved via the engine registry).
    n_joins, n_queries, seed:
        Workload cohort coordinates (drawn by ``prepare_workload``).
    p:
        Number of system sites.
    f:
        Granularity parameter.
    epsilon:
        Resource-overlap parameter.
    params:
        Table 2 system parameters (annotation *and* scheduling use these,
        so sensitivity sweeps vary them per point).
    """

    algorithm: str
    n_joins: int
    n_queries: int
    seed: int
    p: int
    f: float
    epsilon: float
    params: SystemParameters = PAPER_PARAMETERS


def evaluate_point(point: SweepPoint) -> float:
    """Average response time at one sweep point (deterministic).

    Module-level so it pickles for process pools; the workload cohort is
    cached per process, so a worker evaluating many points of one figure
    draws and annotates each cohort once.
    """
    queries = prepare_workload(
        point.n_joins, point.n_queries, point.seed, point.params
    )
    return average_response_time(
        point.algorithm,
        queries,
        p=point.p,
        f=point.f,
        epsilon=point.epsilon,
        params=point.params,
    )


class ParallelRunner:
    """Evaluate sweep points, optionally over a process pool.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) evaluates inline and serially.
    metrics:
        Optional recorder; accumulates the ``points_evaluated`` counter
        and the ``run`` / ``point_seconds`` timers.
    """

    def __init__(
        self, workers: int = 1, *, metrics: MetricsRecorder | None = None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.metrics = metrics

    def run(self, points: Sequence[SweepPoint]) -> list[float]:
        """Evaluate every point, returning values in input order.

        Algorithm names are validated up front (in the parent process),
        so an unknown name raises
        :class:`~repro.exceptions.ConfigurationError` before any worker
        is forked.
        """
        points = list(points)
        for point in points:
            get_algorithm(point.algorithm)
        started = time.perf_counter()
        if self.workers == 1 or len(points) <= 1:
            values = [self._evaluate_inline(point) for point in points]
        else:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(points))
            ) as pool:
                values = list(pool.map(evaluate_point, points))
        if self.metrics is not None:
            self.metrics.count("points_evaluated", len(points))
            self.metrics.timers["run"] = (
                self.metrics.timers.get("run", 0.0)
                + time.perf_counter()
                - started
            )
        return values

    def _evaluate_inline(self, point: SweepPoint) -> float:
        if self.metrics is None:
            return evaluate_point(point)
        with self.metrics.timer("point_seconds"):
            return evaluate_point(point)

    def __repr__(self) -> str:
        return f"ParallelRunner(workers={self.workers})"
