"""Parallel, instrumented evaluation of experiment sweep points.

A figure regeneration is an embarrassingly parallel grid: every
``(algorithm, workload, P, f, epsilon, parameters)`` coordinate is
independent of every other.  :class:`ParallelRunner` fans a list of
:class:`SweepPoint` coordinates over a process pool and returns the
values in input order.

Determinism: a sweep point *fully* determines its value.  Workloads are
drawn from a seeded generator and cached per process
(:func:`repro.experiments.runner.prepare_workload`), and scheduling is
deterministic, so the result list is bit-identical for any worker count
— ``workers=4`` is purely a wall-clock optimization.  ``workers=1``
short-circuits the pool entirely and evaluates inline (no fork, easier
debugging, no pickling requirements on custom parameters).

Instrumentation: pass a :class:`~repro.engine.metrics.MetricsRecorder`
to collect evaluated-point counts and wall-clock totals.  Per-point
timings are measured *inside* the evaluation (workers return
``(value, seconds)`` pairs), so the ``point_seconds`` timer is recorded
for any worker count, not just the inline path.

Crash robustness: a worker dying mid-sweep (OOM kill, segfault, signal)
breaks the whole pool.  Because sweep points are deterministic and
side-effect free, the runner logs which points completed and transparently
re-evaluates the rest inline instead of losing the sweep.

Custom evaluations: ``run(points, evaluate=...)`` accepts any
module-level (hence picklable) function, which is how the robustness
experiment reuses the pool/ordering/retry machinery with its own point
type.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import get_algorithm
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.experiments.runner import average_response_time, prepare_workload

__all__ = ["SweepPoint", "ParallelRunner", "evaluate_point"]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One coordinate of an experiment grid.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (resolved via the engine registry).
    n_joins, n_queries, seed:
        Workload cohort coordinates (drawn by ``prepare_workload``).
    p:
        Number of system sites.
    f:
        Granularity parameter.
    epsilon:
        Resource-overlap parameter.
    params:
        Table 2 system parameters (annotation *and* scheduling use these,
        so sensitivity sweeps vary them per point).
    """

    algorithm: str
    n_joins: int
    n_queries: int
    seed: int
    p: int
    f: float
    epsilon: float
    params: SystemParameters = PAPER_PARAMETERS


def evaluate_point(point: SweepPoint) -> float:
    """Average response time at one sweep point (deterministic).

    Module-level so it pickles for process pools; the workload cohort is
    cached per process, so a worker evaluating many points of one figure
    draws and annotates each cohort once.
    """
    queries = prepare_workload(
        point.n_joins, point.n_queries, point.seed, point.params
    )
    return average_response_time(
        point.algorithm,
        queries,
        p=point.p,
        f=point.f,
        epsilon=point.epsilon,
        params=point.params,
    )


def _timed(evaluate: Callable[[Any], Any], point: Any) -> tuple[Any, float]:
    """Evaluate one point and measure it where it runs (worker or inline)."""
    started = time.perf_counter()
    value = evaluate(point)
    return value, time.perf_counter() - started


class ParallelRunner:
    """Evaluate sweep points, optionally over a process pool.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) evaluates inline and serially.
    metrics:
        Optional recorder; accumulates the ``points_evaluated`` counter
        and the ``run`` / ``point_seconds`` timers (identical for any
        worker count), plus ``points_retried_inline`` when a broken pool
        forced an inline retry.
    """

    def __init__(
        self, workers: int = 1, *, metrics: MetricsRecorder | None = None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.metrics = metrics

    def run(
        self,
        points: Sequence[Any],
        *,
        evaluate: Callable[[Any], Any] = evaluate_point,
    ) -> list[Any]:
        """Evaluate every point, returning values in input order.

        Algorithm names are validated up front (in the parent process),
        so an unknown name raises
        :class:`~repro.exceptions.ConfigurationError` before any worker
        is forked.  ``evaluate`` must be a module-level function when
        ``workers > 1`` (it is shipped to the pool by reference).
        """
        points = list(points)
        for point in points:
            name = getattr(point, "algorithm", None)
            if name is not None:
                get_algorithm(name)
        started = time.perf_counter()
        if self.workers == 1 or len(points) <= 1:
            pairs = [_timed(evaluate, point) for point in points]
        else:
            pairs = self._run_pool(points, evaluate)
        if self.metrics is not None:
            self.metrics.count("points_evaluated", len(points))
            self.metrics.timers["point_seconds"] = self.metrics.timers.get(
                "point_seconds", 0.0
            ) + sum(seconds for _, seconds in pairs)
            self.metrics.timers["run"] = (
                self.metrics.timers.get("run", 0.0)
                + time.perf_counter()
                - started
            )
        return [value for value, _ in pairs]

    def _run_pool(
        self, points: list[Any], evaluate: Callable[[Any], Any]
    ) -> list[tuple[Any, float]]:
        """Fan points over a process pool, surviving worker death.

        Points are submitted individually so a broken pool reveals
        exactly which prefix completed; the remainder is re-evaluated
        inline (safe: points are deterministic and side-effect free).
        Ordinary exceptions raised by ``evaluate`` itself still
        propagate — only pool breakage triggers the retry.
        """
        pairs: list[tuple[Any, float] | None] = [None] * len(points)
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(points))
            ) as pool:
                futures = [pool.submit(_timed, evaluate, p) for p in points]
                for i, future in enumerate(futures):
                    pairs[i] = future.result()
        except BrokenProcessPool:
            remaining = [i for i, pair in enumerate(pairs) if pair is None]
            _LOG.warning(
                "worker pool died after %d/%d sweep points; "
                "re-evaluating the remaining %d inline",
                len(points) - len(remaining),
                len(points),
                len(remaining),
            )
            if self.metrics is not None:
                self.metrics.count("points_retried_inline", len(remaining))
            for i in remaining:
                pairs[i] = _timed(evaluate, points[i])
        return pairs  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"ParallelRunner(workers={self.workers})"
