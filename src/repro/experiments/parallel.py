"""Parallel, instrumented, resumable evaluation of experiment sweep points.

A figure regeneration is an embarrassingly parallel grid: every
``(algorithm, workload, P, f, epsilon, parameters)`` coordinate is
independent of every other.  :class:`ParallelRunner` fans a list of
:class:`SweepPoint` coordinates over a process pool and returns the
values in input order.

Determinism: a sweep point *fully* determines its value.  Workloads are
drawn from a seeded generator and cached per process
(:func:`repro.experiments.runner.prepare_workload`), and scheduling is
deterministic, so the result list is bit-identical for any worker count
— ``workers=4`` is purely a wall-clock optimization.  ``workers=1``
short-circuits the pool entirely and evaluates inline (no fork, easier
debugging, no pickling requirements on custom parameters).

Caching and resume: give the runner a content-addressed
:class:`~repro.store.ArtifactStore` (or set ``REPRO_CACHE_DIR``) and
every point value is looked up before evaluation and persisted the
moment its evaluation completes — not when the sweep ends.  A sweep
killed halfway therefore leaves its completed points on disk; rerunning
it with the same cache directory evaluates only the missing ones.
Because point values are pure functions of their coordinates, cache
hits are bit-identical to recomputation, and the store can be shared
between worker counts, runs, and machines.

Instrumentation: pass a :class:`~repro.engine.metrics.MetricsRecorder`
to collect evaluated-point counts and wall-clock totals.  Per-point
timings are measured *inside* the evaluation (workers return
``(value, seconds)`` pairs), so the ``point_seconds`` timer is recorded
for any worker count, not just the inline path; store traffic lands in
the ``point_store_hits`` / ``point_store_misses`` counters.

Crash robustness: a worker dying mid-sweep (OOM kill, segfault, signal)
breaks the whole pool.  Because sweep points are deterministic and
side-effect free, the runner salvages every future that already
completed, persists them, and transparently re-evaluates the rest
inline instead of losing the sweep.

Custom evaluations: ``run(points, evaluate=...)`` accepts any
module-level (hence picklable) function, which is how the robustness
experiment reuses the pool/ordering/retry/caching machinery with its
own point type.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError
from repro.core.cluster import ClusterSpec
from repro.engine.metrics import (
    COUNTER_POINT_STORE_HITS,
    COUNTER_POINT_STORE_MISSES,
    MetricsRecorder,
)
from repro.engine.registry import get_algorithm
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    span_from_dict,
    span_to_dict,
    use_tracer,
)
from repro.store import (
    KIND_POINT,
    ArtifactStore,
    point_key_payload,
    resolve_store,
)
from repro.experiments.runner import average_response_time, prepare_workload

__all__ = ["SweepPoint", "ParallelRunner", "evaluate_point"]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One coordinate of an experiment grid.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (resolved via the engine registry).
    n_joins, n_queries, seed:
        Workload cohort coordinates (drawn by ``prepare_workload``).
    p:
        Number of system sites.
    f:
        Granularity parameter.
    epsilon:
        Resource-overlap parameter.
    params:
        Table 2 system parameters (annotation *and* scheduling use these,
        so sensitivity sweeps vary them per point).
    cluster:
        Optional heterogeneous cluster (``cluster.p`` must equal ``p``).
        ``None`` — the homogeneous default — keys and evaluates exactly
        as before; callers should pass ``None`` rather than a uniform
        spec so uniform runs share cache entries with capacity-free ones.
    """

    algorithm: str
    n_joins: int
    n_queries: int
    seed: int
    p: int
    f: float
    epsilon: float
    params: SystemParameters = PAPER_PARAMETERS
    cluster: "ClusterSpec | None" = None


def evaluate_point(point: SweepPoint) -> float:
    """Average response time at one sweep point (deterministic).

    Module-level so it pickles for process pools; the workload cohort is
    cached per process, so a worker evaluating many points of one figure
    draws each cohort once and annotates it once per parameter set.
    """
    queries = prepare_workload(
        point.n_joins, point.n_queries, point.seed, point.params
    )
    return average_response_time(
        point.algorithm,
        queries,
        p=point.p,
        f=point.f,
        epsilon=point.epsilon,
        params=point.params,
        cluster=point.cluster,
    )


def _timed(evaluate: Callable[[Any], Any], point: Any) -> tuple[Any, float]:
    """Evaluate one point and measure it where it runs (worker or inline)."""
    started = time.perf_counter()
    value = evaluate(point)
    return value, time.perf_counter() - started


def _timed_traced(
    evaluate: Callable[[Any], Any], point: Any, index: int
) -> tuple[Any, float, list[dict]]:
    """Evaluate one point under a fresh local tracer.

    Returns ``(value, seconds, span_dicts)`` where ``span_dicts`` are
    the relative-offset serializations
    (:func:`~repro.obs.tracer.span_to_dict`) of the span trees recorded
    during evaluation, rooted at one ``point`` span.  The same function
    runs inline and in pool workers — the evaluation is wrapped
    identically either way, which is what makes the stitched span forest
    structurally identical at any worker count.  Span dicts are plain
    data, so they pickle across the process boundary unchanged.
    """
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        with tracer.span("point", index=index):
            started = time.perf_counter()
            value = evaluate(point)
            seconds = time.perf_counter() - started
    return value, seconds, [span_to_dict(root) for root in tracer.roots]


def _stitch_spans(
    tracer: Tracer,
    sweep_span: "Span | None",
    pairs: list,
    keys: list,
    span_dicts: list,
) -> None:
    """Re-root every point's span tree under the sweep span, in input order.

    Worker monotonic clocks are not comparable across processes, so the
    re-rooted point spans are laid out on a *logical* sequential
    timeline: point ``k+1`` begins where point ``k`` ended, starting at
    the sweep span's own clock value.  Input-index order (not completion
    order) makes the stitched tree deterministic for any worker count
    and any completion interleaving.  Cache-served points get a
    zero-length ``point`` marker span, so every point of the sweep is
    visible in the trace with its store key.
    """
    base = sweep_span.start if sweep_span is not None else 0.0
    offset = 0.0
    for i in range(len(pairs)):
        dicts = span_dicts[i]
        if dicts:
            span = span_from_dict(dicts[0], base=base + offset)
        else:
            start = base + offset
            span = Span(
                name="point",
                start=start,
                end=start,
                attributes={"index": i, "cached": True},
            )
        if keys[i] is not None:
            span.attributes["store_key"] = keys[i]
        tracer.adopt(span)
        offset += span.seconds


class ParallelRunner:
    """Evaluate sweep points, optionally over a process pool.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) evaluates inline and serially.
    metrics:
        Optional recorder; accumulates the ``points_evaluated`` counter
        and the ``run`` / ``point_seconds`` timers (identical for any
        worker count), ``point_store_hits`` / ``point_store_misses``
        when a store is in play, plus ``points_retried_inline`` when a
        broken pool forced an inline retry.
    store:
        Optional :class:`~repro.store.ArtifactStore` caching point
        values (``None`` falls back to the ``REPRO_CACHE_DIR``
        environment default; :data:`repro.store.NO_STORE` disables
        caching).  Values are persisted as each point completes, which
        is what makes killed sweeps resumable.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        metrics: MetricsRecorder | None = None,
        store: ArtifactStore | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.metrics = metrics
        self.store = resolve_store(store)

    def run(
        self,
        points: Sequence[Any],
        *,
        evaluate: Callable[[Any], Any] = evaluate_point,
    ) -> list[Any]:
        """Evaluate every point, returning values in input order.

        Algorithm names are validated up front (in the parent process),
        so an unknown name raises
        :class:`~repro.exceptions.ConfigurationError` before any worker
        is forked.  ``evaluate`` must be a module-level function when
        ``workers > 1`` (it is shipped to the pool by reference).

        With a store attached, cached points are answered without
        evaluation and fresh values are persisted as they complete, so
        only the points missing from the store cost any work.
        """
        points = list(points)
        for point in points:
            name = getattr(point, "algorithm", None)
            if name is not None:
                get_algorithm(name)
        started = time.perf_counter()
        tracer = current_tracer()
        traced = tracer.enabled

        pairs: list[tuple[Any, float] | None] = [None] * len(points)
        keys: list[str | None] = [None] * len(points)
        span_dicts: list[list[dict] | None] = [None] * len(points)
        with tracer.span(
            "sweep", points=len(points), workers=self.workers
        ) as sweep_span:
            if self.store is not None:
                for i, point in enumerate(points):
                    payload = point_key_payload(point, evaluate)
                    if payload is None:
                        continue
                    keys[i] = self.store.key(KIND_POINT, payload)
                    cached = self.store.get(KIND_POINT, keys[i])
                    if isinstance(cached, dict) and "value" in cached:
                        pairs[i] = (cached["value"], 0.0)
            hits = sum(1 for pair in pairs if pair is not None)
            pending = [i for i, pair in enumerate(pairs) if pair is None]
            if hits:
                _LOG.info(
                    "point store served %d/%d sweep points; evaluating %d",
                    hits,
                    len(points),
                    len(pending),
                )

            def persist(i: int, pair: tuple[Any, float]) -> None:
                if self.store is None or keys[i] is None:
                    return
                try:
                    self.store.put(KIND_POINT, keys[i], {"value": pair[0]})
                except (ConfigurationError, TypeError):
                    keys[i] = None  # value not JSON-representable: skip caching

            if self.workers == 1 or len(pending) <= 1:
                for i in pending:
                    if traced:
                        value, seconds, span_dicts[i] = _timed_traced(
                            evaluate, points[i], i
                        )
                        pairs[i] = (value, seconds)
                    else:
                        pairs[i] = _timed(evaluate, points[i])
                    persist(i, pairs[i])
            else:
                self._run_pool(
                    points,
                    pending,
                    evaluate,
                    pairs,
                    persist,
                    span_dicts if traced else None,
                )
            if traced:
                _stitch_spans(tracer, sweep_span, pairs, keys, span_dicts)
            if sweep_span is not None:
                sweep_span.attributes["evaluated"] = len(pending)
                sweep_span.attributes["store_hits"] = hits

        if self.metrics is not None:
            self.metrics.count("points_evaluated", len(pending))
            if self.store is not None:
                self.metrics.count(COUNTER_POINT_STORE_HITS, hits)
                self.metrics.count(COUNTER_POINT_STORE_MISSES, len(pending))
            self.metrics.timers["point_seconds"] = self.metrics.timers.get(
                "point_seconds", 0.0
            ) + sum(seconds for _, seconds in pairs)  # type: ignore[misc]
            self.metrics.timers["run"] = (
                self.metrics.timers.get("run", 0.0)
                + time.perf_counter()
                - started
            )
        return [value for value, _ in pairs]  # type: ignore[misc]

    def _run_pool(
        self,
        points: list[Any],
        pending: list[int],
        evaluate: Callable[[Any], Any],
        pairs: list[tuple[Any, float] | None],
        persist: Callable[[int, tuple[Any, float]], None],
        span_dicts: list[list[dict] | None] | None = None,
    ) -> None:
        """Fan the pending points over a process pool, surviving worker death.

        Points are submitted individually and consumed as they complete,
        so every finished value is persisted immediately — a killed
        sweep keeps its completed points.  If the pool breaks (a worker
        died), already-finished futures are salvaged and the remainder
        is re-evaluated inline (safe: points are deterministic and
        side-effect free).  Ordinary exceptions raised by ``evaluate``
        itself still propagate — only pool breakage triggers the retry.

        With ``span_dicts`` given (the parent has an enabled tracer),
        workers run :func:`_timed_traced` and ship their serialized span
        trees back alongside the value; the slot layout mirrors
        ``pairs`` so the caller can stitch them in input order.
        """

        def take(i: int, result: Any) -> tuple[Any, float]:
            if span_dicts is None:
                return result
            value, seconds, span_dicts[i] = result
            return (value, seconds)

        def submit(pool: ProcessPoolExecutor, i: int) -> Any:
            if span_dicts is None:
                return pool.submit(_timed, evaluate, points[i])
            return pool.submit(_timed_traced, evaluate, points[i], i)

        futures: dict[Any, int] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                futures = {submit(pool, i): i for i in pending}
                for future in as_completed(futures):
                    i = futures[future]
                    pairs[i] = take(i, future.result())
                    persist(i, pairs[i])
        except BrokenProcessPool:
            for future, i in futures.items():
                if pairs[i] is None and future.done() and not future.cancelled():
                    try:
                        pairs[i] = take(i, future.result())
                    except Exception:
                        # The future carries the pool breakage (its worker
                        # died mid-point): nothing to salvage, the inline
                        # pass below re-evaluates it.  Only Exception is
                        # absorbed — KeyboardInterrupt/SystemExit during
                        # salvage must still abort the sweep.
                        _LOG.warning(
                            "no salvageable result for sweep point %d; "
                            "re-evaluating inline",
                            i,
                        )
                        continue
                    persist(i, pairs[i])
            remaining = [i for i in pending if pairs[i] is None]
            _LOG.warning(
                "worker pool died after %d/%d sweep points; "
                "re-evaluating the remaining %d inline",
                len(pending) - len(remaining),
                len(pending),
                len(remaining),
            )
            for i in remaining:
                if span_dicts is None:
                    pairs[i] = _timed(evaluate, points[i])
                else:
                    pairs[i] = take(i, _timed_traced(evaluate, points[i], i))
                persist(i, pairs[i])
                # Counted per completed retry (not len(remaining) up
                # front), so a retry that raises leaves the counter equal
                # to the retries that actually finished.
                if self.metrics is not None:
                    self.metrics.count("points_retried_inline")

    def __repr__(self) -> str:
        return f"ParallelRunner(workers={self.workers})"
