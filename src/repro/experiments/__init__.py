"""Reproduction harness for the Section 6 experimental evaluation.

Builders for every figure of the paper, the experiment runner and
configuration, and ASCII rendering.  See ``repro-experiments --help`` for
the command-line interface.
"""

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG, quick_config
from repro.experiments.figures import (
    FIGURES,
    FigureData,
    Series,
    figure5a,
    figure5b,
    figure6a,
    figure6b,
)
from repro.experiments.report import (
    improvement_summary,
    render_figure,
    render_parameters,
)
from repro.experiments.parallel import ParallelRunner, SweepPoint
from repro.experiments.runner import (
    ALGORITHMS,
    average_response_time,
    prepare_workload,
    response_time,
    schedule_query,
)
from repro.experiments.plan_selection import (
    PlanCandidate,
    PlanSelectionResult,
    select_best_plan,
)
from repro.experiments.robustness import (
    RobustnessPoint,
    evaluate_robustness_point,
    robustness_sweep,
    simulate_result_under_faults,
)
from repro.experiments.sensitivity import (
    SWEEPABLE_FIELDS,
    overlap_robustness,
    parameter_sensitivity,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_CONFIG",
    "quick_config",
    "Series",
    "FigureData",
    "figure5a",
    "figure5b",
    "figure6a",
    "figure6b",
    "FIGURES",
    "render_figure",
    "render_parameters",
    "improvement_summary",
    "ALGORITHMS",
    "prepare_workload",
    "schedule_query",
    "response_time",
    "average_response_time",
    "ParallelRunner",
    "SweepPoint",
    "SWEEPABLE_FIELDS",
    "parameter_sensitivity",
    "overlap_robustness",
    "PlanCandidate",
    "PlanSelectionResult",
    "select_best_plan",
    "RobustnessPoint",
    "evaluate_robustness_point",
    "robustness_sweep",
    "simulate_result_under_faults",
]
