"""ASCII rendering of regenerated figures and the Table 2 configuration.

The paper reports line plots; a terminal reproduction prints the same
series as aligned tables (one row per x value, one column per series) plus
derived improvement ratios, which is what the shape claims in
EXPERIMENTS.md are checked against.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.cost.params import SystemParameters
from repro.experiments.figures import FigureData, Series

__all__ = ["render_figure", "render_parameters", "improvement_summary"]


def _format_cell(value: float) -> str:
    if value == 0.0:
        return "0"
    if value >= 1000:
        return f"{value:.0f}"
    return f"{value:.4g}"


def render_figure(figure: FigureData, max_label: int = 26) -> str:
    """Render one figure's series as an aligned ASCII table."""
    xs = figure.series[0].xs if figure.series else ()
    for s in figure.series:
        if s.xs != xs:
            raise ValueError(
                f"series {s.label!r} has a different x grid; cannot tabulate"
            )
    header = [figure.x_label[: max_label]]
    header += [s.label[:max_label] for s in figure.series]
    rows = []
    for i, x in enumerate(xs):
        row = [_format_cell(float(x))]
        row += [_format_cell(s.ys[i]) for s in figure.series]
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [f"== {figure.figure_id}: {figure.title} ==", f"({figure.y_label})"]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    for note in figure.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def improvement_summary(
    figure: FigureData, better: str, worse: str
) -> str:
    """Summarize how much series ``better`` improves on series ``worse``.

    Returns a one-line report of the min/mean/max percentage improvement
    ``(worse - better) / worse`` across the shared x grid.
    """
    b = figure.series_by_label(better)
    w = figure.series_by_label(worse)
    if b.xs != w.xs:
        raise ValueError("series are on different x grids")
    gains = [
        (wv - bv) / wv if wv > 0 else 0.0 for bv, wv in zip(b.ys, w.ys)
    ]
    return (
        f"{better} vs {worse}: improvement "
        f"min={min(gains) * 100:.1f}% "
        f"mean={math.fsum(gains) / len(gains) * 100:.1f}% "
        f"max={max(gains) * 100:.1f}%"
    )


def render_parameters(params: SystemParameters) -> str:
    """Render the Table 2 configuration as an ASCII table."""
    rows: Sequence[tuple[str, str]] = (
        ("CPU Speed", f"{params.cpu_mips:g} MIPS"),
        ("Effective Disk Service Time per page", f"{params.disk_seconds_per_page * 1e3:g} msec"),
        ("Startup Cost per site (alpha)", f"{params.alpha_startup_seconds * 1e3:g} msec"),
        ("Network Transfer Cost per byte (beta)", f"{params.beta_seconds_per_byte * 1e6:g} usec"),
        ("Tuple Size", f"{params.tuple_bytes} bytes"),
        ("Page Size", f"{params.tuples_per_page} tuples"),
        ("Read Page from Disk", f"{params.instr_read_page} instr"),
        ("Write Page to Disk", f"{params.instr_write_page} instr"),
        ("Extract Tuple", f"{params.instr_extract_tuple} instr"),
        ("Hash Tuple", f"{params.instr_hash_tuple} instr"),
        ("Probe Hash Table", f"{params.instr_probe_table} instr"),
    )
    width = max(len(name) for name, _ in rows)
    lines = ["== Table 2: Experiment Parameter Settings =="]
    for name, value in rows:
        lines.append(f"{name.ljust(width)}  {value}")
    return "\n".join(lines)
