"""Command-line entry point: ``repro-experiments <figure> [options]``.

Examples
--------
Regenerate Figure 5(a) with the reduced (quick) sweep::

    repro-experiments fig5a --quick

Regenerate every figure with the paper's full sweep and save the report::

    repro-experiments all > experiments.txt

Print the Table 2 configuration::

    repro-experiments table2

List the registered scheduling algorithms::

    repro-experiments algorithms

Fan a figure's sweep grid over four worker processes (results are
bit-identical to the serial run)::

    repro-experiments fig5a --workers 4

Cache sweep artifacts in a content-addressed store so reruns (and killed
runs restarted) recompute only what is missing — the output bytes are
identical either way::

    repro-experiments fig6a --cache-dir /tmp/repro-cache
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections.abc import Sequence

from repro.core.cluster import parse_cluster_spec
from repro.engine.registry import describe_algorithms
from repro.exceptions import ConfigurationError
from repro.experiments.config import PAPER_CONFIG, quick_config
from repro.experiments.figures import FIGURES
from repro.experiments.report import render_figure, render_parameters
from repro.experiments.robustness import DEFAULT_INTENSITIES, robustness_sweep
from repro.experiments.sensitivity import parameter_sensitivity
from repro.sim.policies import SharingPolicy
from repro.store import ENV_CACHE_DIR, NO_STORE, ArtifactStore

__all__ = ["build_parser", "main"]

#: Sensitivity sweep targets: name -> (field, multipliers).
SENSITIVITY_TARGETS = {
    "sens-cpu": ("cpu_mips", (0.1, 0.5, 1.0, 2.0, 10.0)),
    "sens-disk": ("disk_seconds_per_page", (0.1, 0.5, 1.0, 2.0, 10.0)),
    "sens-startup": ("alpha_startup_seconds", (0.1, 0.5, 1.0, 2.0, 10.0)),
    "sens-network": ("beta_seconds_per_byte", (0.1, 0.5, 1.0, 2.0, 10.0)),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of 'Multi-dimensional Resource "
            "Scheduling for Parallel Queries' (SIGMOD 1996)."
        ),
    )
    parser.add_argument(
        "target",
        choices=[
            *FIGURES,
            *SENSITIVITY_TARGETS,
            "robustness",
            "plansearch",
            "serve",
            "all",
            "table2",
            "algorithms",
        ],
        help=(
            "figure to regenerate, a sensitivity sweep (sens-*), "
            "'robustness' for the fault-injection degradation sweep, "
            "'plansearch' for the schedule-aware plan search, 'serve' "
            "for the online multi-query scheduler service, 'all' "
            "for every figure, 'table2' for the configuration, or "
            "'algorithms' to list the registered schedulers"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced sweep (fewer queries/sites; same shapes)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        help="override the number of random queries per size",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the workload seed"
    )
    parser.add_argument(
        "--sites",
        type=int,
        nargs="+",
        default=None,
        metavar="P",
        help="override the swept site counts",
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="SPEC",
        help=(
            "heterogeneous cluster for fig/serve/plansearch targets: "
            "'name:count[:capacity],...' (e.g. 'fast:4:2.0,slow:12:1.0') "
            "or a bare site count for a uniform pool; pins the site axis "
            "to the spec's total site count"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the series as JSON instead of ASCII tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate sweep points over N processes (identical results)",
    )
    parser.add_argument(
        "--intensities",
        type=float,
        nargs="+",
        default=None,
        metavar="I",
        help="fault intensities in [0, 1] for the robustness sweep",
    )
    parser.add_argument(
        "--policy",
        choices=[p.value for p in SharingPolicy],
        default=SharingPolicy.FAIR_SHARE.value,
        help="sharing policy simulated under fault injection",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=1996,
        metavar="S",
        help="base seed of the deterministic fault plans",
    )
    parser.add_argument(
        "--relations",
        type=int,
        default=9,
        metavar="N",
        help="number of relations in the plansearch query (default 9)",
    )
    parser.add_argument(
        "--pareto",
        action="store_true",
        help=(
            "plansearch: score every candidate and report the ε-approximate "
            "Pareto frontier over (response time, total work, max site load)"
        ),
    )
    parser.add_argument(
        "--pareto-eps",
        type=float,
        default=0.05,
        metavar="E",
        help="plansearch: Pareto approximation factor (default 0.05)",
    )
    serve = parser.add_argument_group(
        "serve", "options of the online scheduler service target"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=600.0,
        metavar="T",
        help="serve: virtual seconds of load generation (default 600)",
    )
    serve.add_argument(
        "--arrival",
        choices=["open", "closed"],
        default="open",
        help="serve: open (Poisson) or closed (client-loop) arrivals",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.06,
        metavar="R",
        help="serve: mean open-arrival rate in queries/s (default 0.06)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="serve: closed-loop client population (default 8)",
    )
    serve.add_argument(
        "--think-mean",
        type=float,
        default=10.0,
        metavar="T",
        help="serve: mean closed-loop think time in seconds (default 10)",
    )
    serve.add_argument(
        "--diurnal",
        type=float,
        default=0.3,
        metavar="A",
        help="serve: diurnal rate-modulation amplitude in [0,1) (default 0.3)",
    )
    serve.add_argument(
        "--governor",
        choices=["adaptive", "fixed"],
        default="adaptive",
        help="serve: degree-governor policy (default adaptive)",
    )
    serve.add_argument(
        "--max-degree",
        type=int,
        default=8,
        metavar="K",
        help="serve: clone-degree budget per query (default 8)",
    )
    serve.add_argument(
        "--max-coresident",
        type=int,
        default=3,
        metavar="M",
        help="serve: co-resident query cap per site (default 3)",
    )
    serve.add_argument(
        "--granularity",
        type=float,
        default=0.1,
        metavar="F",
        help="serve: granularity parameter f (default 0.1)",
    )
    serve.add_argument(
        "--resize",
        action="append",
        default=None,
        metavar="AT:SITE:CAP",
        help=(
            "serve: apply an elastic capacity change at virtual time AT, "
            "setting site SITE's capacity to CAP (repeatable)"
        ),
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "serve: sample live metrics (queue depths, utilization, "
            "pressure, SLO attainment) on the virtual clock; stdout "
            "stays byte-identical"
        ),
    )
    serve.add_argument(
        "--telemetry-interval",
        type=float,
        default=None,
        metavar="T",
        help=(
            "serve: virtual seconds between telemetry samples "
            "(implies --telemetry; default 5)"
        ),
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help=(
            "serve: write the Prometheus snapshot (metrics.prom) and the "
            "JSONL sample stream (metrics.jsonl) into DIR (implies "
            "--telemetry)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed artifact cache directory; reruns and "
            "resumed sweeps recompute only missing points (default: "
            f"${ENV_CACHE_DIR} if set)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"disable artifact caching even when ${ENV_CACHE_DIR} is set",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "enable span tracing and print a per-span summary to stderr "
            "(stdout stays byte-identical)"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "enable span tracing and write trace.json (Chrome trace-event "
            "/ Perfetto), events.jsonl, and manifest.json into DIR"
        ),
    )
    return parser


def _run_plansearch(args, config, store) -> int:
    """The ``plansearch`` target: schedule-aware search on a random query.

    Stdout carries only search-determined facts (stats, winner, ranking,
    frontier) and is byte-identical at any ``--workers`` count and with
    the cache disabled, cold, or warm; store hit/miss accounting — which
    legitimately varies with cache state — goes to stderr.
    """
    import numpy as np

    from repro.plans.query_graph import random_tree_query
    from repro.plans.relations import random_catalog
    from repro.search import search_plans

    p = args.sites[0] if args.sites else 16
    rng = np.random.default_rng(config.seed)
    catalog = random_catalog(args.relations, rng)
    graph = random_tree_query(catalog, rng)
    start = time.perf_counter()
    result = search_plans(
        graph,
        catalog,
        p=p,
        params=config.params,
        seed=config.seed,
        workers=args.workers,
        store=store,
        pareto=args.pareto,
        pareto_eps=args.pareto_eps,
        cluster=config.cluster,
    )
    elapsed = time.perf_counter() - start
    stats = result.stats

    def row(sp):
        return {
            "key": sp.key,
            "response_time": sp.response_time,
            "num_phases": sp.num_phases,
            "total_work": sp.total_work,
            "max_site_load": sp.max_site_load,
        }

    if args.json:
        payload = {
            "schema": 1,
            "target": "plansearch",
            "relations": args.relations,
            "p": p,
            "seed": config.seed,
            # Emitted only for heterogeneous runs so homogeneous stdout
            # stays byte-identical.
            **(
                {"cluster": config.cluster.spec_string()}
                if config.cluster is not None
                else {}
            ),
            "exhaustive": stats.exhaustive,
            "enumerated": stats.enumerated,
            "unique": stats.unique,
            "pruned": stats.pruned,
            "scored": stats.scored,
            "winner": row(result.winner),
            "candidates": [row(sp) for sp in result.candidates],
            "frontier": [row(sp) for sp in result.frontier],
        }
        print(json.dumps(payload, indent=2))
    else:
        regime = "exhaustive" if stats.exhaustive else "local search"
        print(
            f"Schedule-aware plan search: {args.relations} relations, "
            f"p={p}, seed={config.seed}"
        )
        if config.cluster is not None:
            print(f"cluster: {config.cluster.spec_string()}")
        print(
            f"regime: {regime}; enumerated {stats.enumerated}, "
            f"unique {stats.unique}, pruned {stats.pruned} "
            f"({stats.prune_rate:.0%}), scored {stats.scored}"
        )
        w = result.winner
        print(
            f"winner {w.key[:12]}: response={w.response_time:.6g} "
            f"phases={w.num_phases} work={w.total_work:.6g} "
            f"max_site_load={w.max_site_load:.6g}"
        )
        for rank, sp in enumerate(result.candidates[:5], start=1):
            print(
                f"  {rank}. {sp.key[:12]}  response={sp.response_time:.6g}  "
                f"phases={sp.num_phases}"
            )
        if result.frontier:
            print(
                f"pareto frontier (eps={args.pareto_eps:g}): "
                f"{len(result.frontier)} plans"
            )
            for sp in result.frontier:
                print(
                    f"  {sp.key[:12]}  response={sp.response_time:.6g} "
                    f"work={sp.total_work:.6g} load={sp.max_site_load:.6g}"
                )
        print(f"(searched in {elapsed:.1f}s)")
    print(
        f"[plansearch] store: {stats.store_hits} hits, "
        f"{stats.store_misses} misses ({stats.hit_rate:.0%} hit rate)",
        file=sys.stderr,
    )
    return 0


def _run_serve(args, config, store, session=None) -> int:
    """The ``serve`` target: one online multi-query scheduling run.

    Stdout carries the deterministic run summary only — identical for
    identical seeds at any ``--workers`` count (the service is
    single-loop virtual-time code; worker processes do not exist in it),
    with the cache disabled, cold, or warm, and with telemetry on or
    off.  Wall-clock, telemetry accounting, and metric artifacts go to
    stderr and files.
    """
    from repro.serve import (
        GovernorConfig,
        GovernorPolicy,
        SchedulerService,
        ServeConfig,
        TelemetryConfig,
        WorkloadSpec,
    )

    p = args.sites[0] if args.sites else 20
    events = []
    for text in args.resize or ():
        try:
            at, site, capacity = text.split(":")
            events.append((float(at), int(site), float(capacity)))
        except ValueError:
            print(
                f"--resize wants AT:SITE:CAP, got {text!r}", file=sys.stderr
            )
            return 2
    telemetry_config = None
    if (
        args.telemetry
        or args.telemetry_interval is not None
        or args.metrics_out is not None
    ):
        telemetry_config = TelemetryConfig(
            interval=(
                args.telemetry_interval
                if args.telemetry_interval is not None
                else 5.0
            )
        )
    spec = WorkloadSpec(
        duration=args.duration,
        arrival=args.arrival,
        rate=args.rate,
        diurnal_amplitude=args.diurnal,
        clients=args.clients,
        think_mean=args.think_mean,
        seed=config.seed,
    )
    serve_config = ServeConfig(
        p=p,
        f=args.granularity,
        epsilon=config.default_epsilon,
        params=config.params,
        workload=spec,
        governor=GovernorConfig(
            policy=GovernorPolicy(args.governor), max_degree=args.max_degree
        ),
        max_coresident=args.max_coresident,
        cluster=config.cluster,
        capacity_events=tuple(events),
        telemetry=telemetry_config,
    )
    service = SchedulerService(serve_config, store=store)
    report = service.run()
    summary = report.summary()
    if args.json:
        payload = {
            "schema": 1,
            "target": "serve",
            "p": p,
            "arrival": args.arrival,
            "governor": args.governor,
            "seed": config.seed,
            **(
                {"cluster": config.cluster.spec_string()}
                if config.cluster is not None
                else {}
            ),
            "summary": summary,
        }
        print(json.dumps(payload, indent=2))
    else:
        lat = summary["latency"]["all"]
        print(
            f"Online scheduler service: p={p}, {args.arrival} arrivals, "
            f"{args.governor} governor, seed={config.seed}"
        )
        if config.cluster is not None:
            print(f"cluster: {config.cluster.spec_string()}")
        print(
            f"offered {summary['offered']}, outcomes {summary['outcomes']}, "
            f"deferred-then-run {summary['deferred_then_run']}"
        )
        print(
            f"throughput {summary['qps']:.6g} queries/s over "
            f"{summary['elapsed']:.6g}s (virtual)"
        )
        print(
            f"latency p50={lat['p50']:.6g} p95={lat['p95']:.6g} "
            f"p99={lat['p99']:.6g} mean_wait={lat['mean_wait']:.6g}"
        )
        deg = summary["degrees"]
        print(
            f"degrees min={deg['min']} max={deg['max']} mean={deg['mean']:.6g} "
            f"histogram={deg['histogram']}"
        )
        pool = summary["pool"]
        print(
            f"pool utilization {pool['site_utilization']:.6g}, mean "
            f"concurrency {pool['mean_concurrency']:.6g}, "
            f"placement scans {pool['placement_scans']}"
        )
        if "sites_resized" in pool:
            print(f"elastic capacity changes {pool['sites_resized']}")
    # Telemetry output rides the tracing/caching rule: files and stderr
    # only, never stdout.
    if service.telemetry is not None:
        telemetry = service.telemetry
        if args.metrics_out:
            os.makedirs(args.metrics_out, exist_ok=True)
            telemetry.registry.write_prometheus(
                os.path.join(args.metrics_out, "metrics.prom")
            )
            telemetry.registry.write_jsonl(
                os.path.join(args.metrics_out, "metrics.jsonl")
            )
        if session is not None:
            session.add_events(telemetry.timeline_events())
        wrote = f", wrote {args.metrics_out}" if args.metrics_out else ""
        print(
            f"[telemetry] {len(telemetry.registry.samples)} samples, "
            f"{len(telemetry.breaches)} SLO breaches{wrote}",
            file=sys.stderr,
        )
    print(f"[serve] ran in {report.wall_seconds:.2f}s wall", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.no_cache and args.cache_dir:
        print("--no-cache and --cache-dir are mutually exclusive", file=sys.stderr)
        return 2
    cluster_spec = None
    if args.cluster is not None:
        if args.sites is not None:
            print(
                "--cluster and --sites are mutually exclusive "
                "(the cluster spec pins the site count)",
                file=sys.stderr,
            )
            return 2
        try:
            cluster_spec = parse_cluster_spec(args.cluster)
        except ConfigurationError as exc:
            print(f"--cluster: {exc}", file=sys.stderr)
            return 2
        # The spec pins the site axis for every target; a uniform spec
        # is normalized away by ExperimentConfig, so '--cluster 20'
        # behaves (and caches) exactly like '--sites 20'.
        args.sites = [cluster_spec.p]
    # The store travels two ways: as an object for inline evaluation and
    # through the environment for forked sweep workers.  Stats and the
    # summary go to stderr only — stdout (figures, JSON) must stay
    # byte-identical whether the cache is disabled, cold, or warm.
    store: ArtifactStore | None
    if args.no_cache:
        os.environ.pop(ENV_CACHE_DIR, None)
        store = NO_STORE  # type: ignore[assignment]
    elif args.cache_dir:
        os.environ[ENV_CACHE_DIR] = args.cache_dir
        store = ArtifactStore(args.cache_dir)
    else:
        store = None

    def cache_summary() -> None:
        if isinstance(store, ArtifactStore):
            stats = store.stats
            print(
                f"[cache] {stats.hits} hits, {stats.misses} misses, "
                f"{stats.writes} writes ({stats.hit_rate:.0%} hit rate) "
                f"in {store.root}",
                file=sys.stderr,
            )

    config = quick_config() if args.quick else PAPER_CONFIG
    overrides = {}
    if args.queries is not None:
        overrides["n_queries"] = args.queries
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.sites is not None:
        overrides["site_counts"] = tuple(args.sites)
    if cluster_spec is not None:
        overrides["cluster"] = cluster_spec
    if overrides:
        config = config.with_overrides(**overrides)

    # Tracing rides the same rule as caching: trace artifacts and the
    # span summary go to files and stderr only, so stdout is
    # byte-identical with tracing enabled or disabled at any --workers.
    session = None
    if args.trace or args.trace_dir is not None:
        from repro.obs import TraceSession

        session = TraceSession(
            args.trace_dir,
            target=args.target,
            argv=list(argv) if argv is not None else sys.argv[1:],
            config=config,
            store=store if isinstance(store, ArtifactStore) else None,
        )

    def emit(figure, elapsed: float) -> None:
        if args.json:
            from repro.serialization import figure_to_dict

            print(json.dumps(figure_to_dict(figure), indent=2))
        else:
            print(render_figure(figure))
            print(f"(regenerated in {elapsed:.1f}s)")
            print()
        if session is not None and session.log is not None:
            session.log.emit(
                "figure", figure_id=figure.figure_id, seconds=round(elapsed, 6)
            )

    def dispatch() -> int:
        if args.target == "table2":
            print(render_parameters(config.params))
            return 0

        if args.target == "algorithms":
            entries = describe_algorithms()
            width = max(len(name) for name in entries)
            for name, entry in entries.items():
                suffix = " (lower bound)" if entry.kind == "bound" else ""
                print(f"{name.ljust(width)}  {entry.description}{suffix}")
            return 0

        if args.target == "robustness":
            intensities = (
                DEFAULT_INTENSITIES
                if args.intensities is None
                else tuple(args.intensities)
            )
            start = time.perf_counter()
            figure = robustness_sweep(
                config,
                intensities=intensities,
                policy=SharingPolicy(args.policy),
                fault_seed=args.fault_seed,
                workers=args.workers,
                store=store,
            )
            emit(figure, time.perf_counter() - start)
            cache_summary()
            return 0

        if args.target in SENSITIVITY_TARGETS:
            field, multipliers = SENSITIVITY_TARGETS[args.target]
            start = time.perf_counter()
            figure = parameter_sensitivity(
                field, multipliers, config, workers=args.workers, store=store
            )
            emit(figure, time.perf_counter() - start)
            cache_summary()
            return 0

        if args.target == "plansearch":
            code = _run_plansearch(args, config, store)
            cache_summary()
            return code

        if args.target == "serve":
            code = _run_serve(args, config, store, session)
            cache_summary()
            return code

        targets = list(FIGURES) if args.target == "all" else [args.target]
        for name in targets:
            start = time.perf_counter()
            figure = FIGURES[name](config, workers=args.workers, store=store)
            emit(figure, time.perf_counter() - start)
        cache_summary()
        return 0

    if session is None:
        return dispatch()
    with session:
        code = dispatch()
    for line in session.summary_lines():
        print(line, file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
