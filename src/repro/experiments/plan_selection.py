"""Scheduling-aware plan selection: the scheduler as an optimizer cost model.

The paper positions parallelization as a phase after conventional plan
selection ("the plan is usually the result of an earlier phase of
conventional centralized query optimization", §1).  But once a fast,
provably near-optimal scheduler exists, it can *itself* serve as the cost
model for choosing among candidate plans — a bushy shape that looks good
under a scalar cost model may parallelize poorly (deep task chains, hot
intermediate results), and vice versa.

:func:`select_best_plan` samples ``k`` random bushy plans for one query
graph, schedules each with TREESCHEDULE, and returns the plan with the
smallest scheduled response time, together with the full ranking.  The
``abl-plansel`` benchmark quantifies the gap between the best and the
median random plan — i.e. how much response time a scheduling-blind
optimizer leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # numpy is an optional extra; plan sampling needs it
    np = None  # type: ignore[assignment]

from repro.exceptions import ConfigurationError
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.tree_schedule import TreeScheduleResult, tree_schedule
from repro.cost.annotate import annotate_plan
from repro.cost.params import SystemParameters
from repro.plans.join_tree import PlanNode, random_bushy_plan
from repro.plans.operator_tree import expand_plan
from repro.plans.query_graph import QueryGraph
from repro.plans.relations import Catalog
from repro.plans.task_tree import build_task_tree

__all__ = ["PlanCandidate", "PlanSelectionResult", "select_best_plan"]


@dataclass(frozen=True)
class PlanCandidate:
    """One sampled plan together with its scheduled response time."""

    plan: PlanNode
    response_time: float
    num_phases: int


@dataclass(frozen=True)
class PlanSelectionResult:
    """Ranking of the sampled candidates (best first).

    Attributes
    ----------
    candidates:
        All sampled plans, sorted by scheduled response time.
    """

    candidates: tuple[PlanCandidate, ...]

    @property
    def best(self) -> PlanCandidate:
        """The winning candidate."""
        return self.candidates[0]

    @property
    def median_response_time(self) -> float:
        """Response time of the median-ranked candidate."""
        return self.candidates[len(self.candidates) // 2].response_time

    @property
    def selection_gain(self) -> float:
        """Relative improvement of the best over the median candidate."""
        median = self.median_response_time
        if median <= 0:
            return 0.0
        return (median - self.best.response_time) / median


def select_best_plan(
    graph: QueryGraph,
    catalog: Catalog,
    *,
    k: int,
    seed: int,
    p: int,
    params: SystemParameters,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
) -> tuple[PlanSelectionResult, TreeScheduleResult]:
    """Sample ``k`` random bushy plans and keep the best-scheduling one.

    Returns the full ranking plus the winning plan's schedule.

    Parameters
    ----------
    graph, catalog:
        The query.
    k:
        Number of random bushy plans to sample (``>= 1``).
    seed:
        RNG seed for plan sampling.
    p, params, comm, overlap, f:
        Scheduling context (as for
        :func:`repro.core.tree_schedule.tree_schedule`).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if np is None:
        raise ConfigurationError(
            "plan sampling needs numpy; install the 'repro[numpy]' extra"
        )
    rng = np.random.default_rng(seed)
    scored: list[tuple[PlanCandidate, TreeScheduleResult]] = []
    for _ in range(k):
        plan = random_bushy_plan(graph, catalog, rng)
        op_tree = expand_plan(plan)
        annotate_plan(op_tree, params)
        task_tree = build_task_tree(op_tree)
        result = tree_schedule(
            op_tree, task_tree, p=p, comm=comm, overlap=overlap, f=f
        )
        scored.append(
            (
                PlanCandidate(
                    plan=plan,
                    response_time=result.response_time,
                    num_phases=result.num_phases,
                ),
                result,
            )
        )
    scored.sort(key=lambda item: item[0].response_time)
    ranking = PlanSelectionResult(
        candidates=tuple(candidate for candidate, _ in scored)
    )
    return ranking, scored[0][1]
