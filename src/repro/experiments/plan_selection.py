"""Scheduling-aware plan selection: the scheduler as an optimizer cost model.

The paper positions parallelization as a phase after conventional plan
selection ("the plan is usually the result of an earlier phase of
conventional centralized query optimization", §1).  But once a fast,
provably near-optimal scheduler exists, it can *itself* serve as the cost
model for choosing among candidate plans — a bushy shape that looks good
under a scalar cost model may parallelize poorly (deep task chains, hot
intermediate results), and vice versa.

:func:`select_best_plan` samples ``k`` random bushy plans for one query
graph and keeps the plan with the smallest scheduled response time,
together with the full ranking.  Since PR 7 it is built on the
:mod:`repro.search` machinery: structurally identical samples are
collapsed by canonical plan hash *before* anything is scheduled (the
historical implementation happily scheduled duplicates), scoring fans
out over :class:`~repro.experiments.parallel.ParallelRunner` workers
with bit-identical rankings at any worker count, and candidate scores
are memoized through the content-addressed artifact store.  For the
search proper — deterministic enumeration, lower-bound pruning, the
ε-Pareto mode — use :func:`repro.search.search_plans`; this entry point
keeps the paper-era sampling semantics for the ``abl-plansel``
benchmark, which quantifies the gap between the best and the median
random plan.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # numpy is an optional extra; plan sampling needs it
    np = None  # type: ignore[assignment]

from repro.exceptions import ConfigurationError
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.tree_schedule import TreeScheduleResult
from repro.cost.params import SystemParameters
from repro.engine.metrics import (
    COUNTER_PLAN_STORE_HITS,
    COUNTER_PLAN_STORE_MISSES,
    COUNTER_PLANS_DEDUPED,
    COUNTER_PLANS_ENUMERATED,
    COUNTER_PLANS_SCORED,
    COUNTER_POINT_STORE_HITS,
    COUNTER_POINT_STORE_MISSES,
    MetricsRecorder,
)
from repro.experiments.parallel import ParallelRunner
from repro.obs.tracer import current_tracer
from repro.plans.join_tree import PlanNode, random_bushy_plan
from repro.plans.query_graph import QueryGraph
from repro.plans.relations import Catalog
from repro.search.canonical import plan_key
from repro.search.score import (
    candidate_point,
    evaluate_candidate,
    schedule_candidate,
)
from repro.store import ArtifactStore, resolve_store

__all__ = ["PlanCandidate", "PlanSelectionResult", "select_best_plan"]


@dataclass(frozen=True)
class PlanCandidate:
    """One sampled plan together with its scheduled response time.

    ``key`` is the canonical structural hash
    (:func:`repro.search.plan_key`) that deduplicated the sample.
    """

    plan: PlanNode
    response_time: float
    num_phases: int
    key: str = ""


@dataclass(frozen=True)
class PlanSelectionResult:
    """Ranking of the distinct sampled candidates (best first).

    Attributes
    ----------
    candidates:
        The structurally distinct sampled plans, sorted by scheduled
        response time.
    sampled:
        How many plans were drawn (``k``); ``len(candidates)`` can be
        smaller because duplicates are collapsed before scheduling.
    """

    candidates: tuple[PlanCandidate, ...]
    sampled: int = 0

    @property
    def best(self) -> PlanCandidate:
        """The winning candidate."""
        return self.candidates[0]

    @property
    def median_response_time(self) -> float:
        """True median of the candidate response times.

        For an odd candidate count this is the middle-ranked time; for
        an even count the mean of the two middle times (the historical
        ``len // 2`` indexing was upper-biased for even ``k``).
        """
        times = [c.response_time for c in self.candidates]
        mid = len(times) // 2
        if len(times) % 2 == 1:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2.0

    @property
    def selection_gain(self) -> float:
        """Relative improvement of the best over the median candidate."""
        median = self.median_response_time
        if median <= 0:
            return 0.0
        return (median - self.best.response_time) / median


def select_best_plan(
    graph: QueryGraph,
    catalog: Catalog,
    *,
    k: int,
    seed: int,
    p: int,
    params: SystemParameters,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    workers: int = 1,
    store: ArtifactStore | None = None,
    metrics: MetricsRecorder | None = None,
) -> tuple[PlanSelectionResult, TreeScheduleResult]:
    """Sample ``k`` random bushy plans and keep the best-scheduling one.

    Returns the full ranking (duplicates collapsed) plus the winning
    plan's schedule.  The sampling sequence is unchanged from the
    historical implementation (same seed → same plans); only scheduling
    of structural repeats is skipped, so the winner and every distinct
    response time are identical to the pre-dedupe behaviour.

    Parameters
    ----------
    graph, catalog:
        The query.
    k:
        Number of random bushy plans to sample (``>= 1``).
    seed:
        RNG seed for plan sampling.
    p, params, comm, overlap, f:
        Scheduling context (as for
        :func:`repro.core.tree_schedule.tree_schedule`).
    workers:
        Fan candidate scoring over a process pool (bit-identical
        rankings at any count).
    store:
        Optional artifact store memoizing candidate scores and the
        winner's schedule (``None`` falls back to ``REPRO_CACHE_DIR``;
        :data:`repro.store.NO_STORE` disables caching).
    metrics:
        Optional recorder accumulating the ``plans_enumerated`` /
        ``plans_deduped`` / ``plans_scored`` / ``plan_store_hits``
        counters (also merged into the winner's instrumentation).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if np is None:
        raise ConfigurationError(
            "plan sampling needs numpy; install the 'repro[numpy]' extra"
        )
    rng = np.random.default_rng(seed)
    rec = MetricsRecorder()
    runner_rec = MetricsRecorder()
    runner = ParallelRunner(workers, metrics=runner_rec, store=store)
    resolved_store = resolve_store(store)

    with current_tracer().span("plan_search", p=p, f=f, k=k, workers=workers):
        unique: list[tuple[str, PlanNode]] = []
        seen: set[str] = set()
        for _ in range(k):
            plan = random_bushy_plan(graph, catalog, rng)
            key = plan_key(plan)
            if key in seen:
                continue
            seen.add(key)
            unique.append((key, plan))

        points = [
            candidate_point(
                plan, p=p, f=f, shelf="min", params=params, comm=comm, overlap=overlap
            )
            for _, plan in unique
        ]
        values = runner.run(points, evaluate=evaluate_candidate)
        scored = [
            (
                PlanCandidate(
                    plan=plan,
                    response_time=float(value["response_time"]),
                    num_phases=int(value["num_phases"]),
                    key=key,
                ),
                point,
            )
            for (key, plan), point, value in zip(unique, points, values)
        ]
        scored.sort(key=lambda item: item[0].response_time)
        result, winner_cached = schedule_candidate(
            scored[0][1], store=resolved_store
        )

    rec.count(COUNTER_PLANS_ENUMERATED, k)
    rec.count(COUNTER_PLANS_DEDUPED, k - len(unique))
    rec.count(COUNTER_PLANS_SCORED, len(unique))
    if resolved_store is not None:
        hits = runner_rec.counters.get(COUNTER_POINT_STORE_HITS, 0.0)
        misses = runner_rec.counters.get(COUNTER_POINT_STORE_MISSES, 0.0)
        rec.count(COUNTER_PLAN_STORE_HITS, hits + (1.0 if winner_cached else 0.0))
        rec.count(COUNTER_PLAN_STORE_MISSES, misses + (0.0 if winner_cached else 1.0))
    for name, value in rec.counters.items():
        result.instrumentation.counters[name] = (
            result.instrumentation.counters.get(name, 0.0) + value
        )
    if metrics is not None:
        metrics.merge(rec)

    ranking = PlanSelectionResult(
        candidates=tuple(candidate for candidate, _ in scored), sampled=k
    )
    return ranking, result
