"""Hardware-parameter sensitivity sweeps (calibration of Table 2).

Footnote 4 of the paper: "the CPU speed and disk service rate were chosen
so that the system is relatively balanced".  This module asks how the
headline comparison depends on that calibration: sweep one
:class:`~repro.cost.params.SystemParameters` field across a range of
multipliers, re-annotate the workload, and record both algorithms'
average response times.

The interesting shape (asserted by the ``abl-params`` benchmark): the
multi-dimensional advantage is largest near balance and shrinks as one
resource dominates — when every operator is bottlenecked on the same
resource, there is little complementary idle capacity left to share, and
the problem degenerates toward one-dimensional scheduling.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import ConfigurationError
from repro.core.resource_model import ConvexCombinationOverlap
from repro.core.tree_schedule import tree_schedule
from repro.baselines.synchronous import synchronous_schedule
from repro.cost.annotate import annotate_plan
from repro.cost.params import SystemParameters
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.figures import FigureData, Series
from repro.plans.generator import generate_workload

__all__ = ["SWEEPABLE_FIELDS", "parameter_sensitivity"]

#: Fields of SystemParameters that the sweep accepts.
SWEEPABLE_FIELDS = (
    "cpu_mips",
    "disk_seconds_per_page",
    "alpha_startup_seconds",
    "beta_seconds_per_byte",
)


def parameter_sensitivity(
    field: str,
    multipliers: tuple[float, ...],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    n_joins: int = 20,
    p: int = 40,
) -> FigureData:
    """Sweep one hardware parameter and compare the two schedulers.

    Parameters
    ----------
    field:
        Which :class:`SystemParameters` field to scale (one of
        :data:`SWEEPABLE_FIELDS`).
    multipliers:
        Factors applied to the paper's value (1.0 = Table 2).
    config:
        Supplies workload size, seed, and the base parameters.
    n_joins, p:
        Workload and system size of the sweep.

    Returns
    -------
    FigureData
        Two series (TreeSchedule, Synchronous) against the multiplier.
    """
    if field not in SWEEPABLE_FIELDS:
        raise ConfigurationError(
            f"cannot sweep {field!r}; choose one of {SWEEPABLE_FIELDS}"
        )
    if not multipliers or any(m <= 0 for m in multipliers):
        raise ConfigurationError("multipliers must be positive and non-empty")

    overlap = ConvexCombinationOverlap(config.default_epsilon)
    # Fresh (uncached) workload: annotation is parameter-dependent and
    # mutates operator specs in place, so this sweep owns its own copy.
    queries = generate_workload(n_joins, config.n_queries, config.seed)

    ts_ys = []
    sy_ys = []
    for m in multipliers:
        params: SystemParameters = replace(
            config.params, **{field: getattr(config.params, field) * m}
        )
        comm = params.communication_model()
        ts_total = 0.0
        sy_total = 0.0
        for q in queries:
            annotate_plan(q.operator_tree, params)
            ts_total += tree_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap,
                f=config.default_f,
            ).response_time
            sy_total += synchronous_schedule(
                q.operator_tree, q.task_tree, p=p, comm=comm, overlap=overlap
            ).response_time
        ts_ys.append(ts_total / len(queries))
        sy_ys.append(sy_total / len(queries))

    xs = tuple(float(m) for m in multipliers)
    return FigureData(
        figure_id=f"sens-{field}",
        title=f"Sensitivity to {field} ({n_joins} joins, P={p})",
        x_label=f"{field} multiplier (1.0 = Table 2)",
        y_label="avg response time (s)",
        series=(
            Series(label="TreeSchedule", xs=xs, ys=tuple(ts_ys)),
            Series(label="Synchronous", xs=xs, ys=tuple(sy_ys)),
        ),
        notes=(
            "Footnote 4 calibration check: the multi-dimensional advantage "
            "peaks near resource balance.",
        ),
    )
