"""Hardware-parameter sensitivity sweeps (calibration of Table 2).

Footnote 4 of the paper: "the CPU speed and disk service rate were chosen
so that the system is relatively balanced".  This module asks how the
headline comparison depends on that calibration: sweep one
:class:`~repro.cost.params.SystemParameters` field across a range of
multipliers, re-annotate the workload, and record both algorithms'
average response times.

The interesting shape (asserted by the ``abl-params`` benchmark): the
multi-dimensional advantage is largest near balance and shrinks as one
resource dominates — when every operator is bottlenecked on the same
resource, there is little complementary idle capacity left to share, and
the problem degenerates toward one-dimensional scheduling.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import ConfigurationError
from repro.core.batch import eq3_makespans_over_epsilon
from repro.core.schedule import PhasedSchedule, Schedule
from repro.cost.params import SystemParameters
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.figures import FigureData, Series
from repro.experiments.parallel import ParallelRunner, SweepPoint
from repro.store import ArtifactStore

__all__ = [
    "SWEEPABLE_FIELDS",
    "parameter_sensitivity",
    "overlap_robustness",
]

#: Fields of SystemParameters that the sweep accepts.
SWEEPABLE_FIELDS = (
    "cpu_mips",
    "disk_seconds_per_page",
    "alpha_startup_seconds",
    "beta_seconds_per_byte",
)


def parameter_sensitivity(
    field: str,
    multipliers: tuple[float, ...],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    n_joins: int = 20,
    p: int = 40,
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Sweep one hardware parameter and compare the two schedulers.

    Parameters
    ----------
    field:
        Which :class:`SystemParameters` field to scale (one of
        :data:`SWEEPABLE_FIELDS`).
    multipliers:
        Factors applied to the paper's value (1.0 = Table 2).
    config:
        Supplies workload size, seed, and the base parameters.
    n_joins, p:
        Workload and system size of the sweep.
    workers:
        Process count for the sweep grid (results are identical for any
        value; see :class:`~repro.experiments.parallel.ParallelRunner`).
    store:
        Optional :class:`~repro.store.ArtifactStore` caching point
        values (falls back to the ``REPRO_CACHE_DIR`` default).

    Returns
    -------
    FigureData
        Two series (TreeSchedule, Synchronous) against the multiplier.
    """
    if field not in SWEEPABLE_FIELDS:
        raise ConfigurationError(
            f"cannot sweep {field!r}; choose one of {SWEEPABLE_FIELDS}"
        )
    if not multipliers or any(m <= 0 for m in multipliers):
        raise ConfigurationError("multipliers must be positive and non-empty")

    # Each multiplier is its own sweep point: the scaled parameters drive
    # annotation *and* scheduling.  The structural cohort is shared; each
    # parameter set gets its own immutable PlanAnnotation (the
    # with_params path), so sweep points can never alias specs.
    scaled: list[SystemParameters] = [
        replace(config.params, **{field: getattr(config.params, field) * m})
        for m in multipliers
    ]
    points = [
        SweepPoint(
            algorithm, n_joins, config.n_queries, config.seed,
            p, config.default_f, config.default_epsilon, params,
        )
        for algorithm in ("treeschedule", "synchronous")
        for params in scaled
    ]
    values = ParallelRunner(workers, store=store).run(points)
    ts_ys = values[: len(multipliers)]
    sy_ys = values[len(multipliers) :]

    xs = tuple(float(m) for m in multipliers)
    return FigureData(
        figure_id=f"sens-{field}",
        title=f"Sensitivity to {field} ({n_joins} joins, P={p})",
        x_label=f"{field} multiplier (1.0 = Table 2)",
        y_label="avg response time (s)",
        series=(
            Series(label="TreeSchedule", xs=xs, ys=tuple(ts_ys)),
            Series(label="Synchronous", xs=xs, ys=tuple(sy_ys)),
        ),
        notes=(
            "Footnote 4 calibration check: the multi-dimensional advantage "
            "peaks near resource balance.",
        ),
    )


def overlap_robustness(
    schedule: Schedule | PhasedSchedule,
    epsilons: tuple[float, ...],
) -> FigureData:
    """Re-evaluate a *fixed* placement's response time per overlap value.

    Complementary to the Figure 5(b) sweep, which re-runs the scheduler
    at each ``epsilon``: this sweep keeps the clone-to-site mapping fixed
    and asks how its Equation (3) response time degrades when the EA2
    overlap calibration was wrong — the placement-robustness side of the
    sensitivity analysis.  Evaluation goes through the batch kernel
    :func:`repro.core.batch.eq3_makespans_over_epsilon` (one vectorized
    pass over all epsilons when numpy is available), so it is cheap
    enough to run per sweep point.
    """
    if not epsilons:
        raise ConfigurationError("overlap_robustness requires at least one epsilon")
    phases = (
        list(schedule.phases)
        if isinstance(schedule, PhasedSchedule)
        else [schedule]
    )
    per_phase = [eq3_makespans_over_epsilon(phase, epsilons) for phase in phases]
    ys = tuple(
        sum(spans[k] for spans in per_phase) for k in range(len(epsilons))
    )
    return FigureData(
        figure_id="sens-overlap-fixed",
        title="Fixed-placement response time vs overlap parameter",
        x_label="overlap parameter epsilon",
        y_label="response time (s)",
        series=(Series(label="fixed placement", xs=tuple(map(float, epsilons)), ys=ys),),
        notes=(
            "Placement held constant; only the EA2 stand-alone clone "
            "times are re-derived per epsilon (Equation 3 batch kernel).",
        ),
    )
