"""Series builders for every figure of the paper's evaluation (Section 6.2).

Each ``figure*`` function regenerates the data behind one paper figure as
a :class:`FigureData` bundle of labelled series; rendering (ASCII tables)
lives in :mod:`repro.experiments.report`.

* :func:`figure5a` — effect of the granularity parameter ``f``
  (40-join queries, ``epsilon = 0.3``): TREESCHEDULE for each ``f`` plus
  SYNCHRONOUS, versus the number of sites.
* :func:`figure5b` — effect of the resource-overlap parameter
  ``epsilon`` (40-join queries, ``f`` fixed): both algorithms for each
  ``epsilon``, versus the number of sites.
* :func:`figure6a` — effect of query size (``epsilon = 0.5``,
  ``f = 0.7``): both algorithms at 20 and 80 sites, versus join count.
* :func:`figure6b` — TREESCHEDULE versus the OPTBOUND lower bound
  (20- and 40-join queries, ``f = 0.7``, ``epsilon = 0.5``), versus the
  number of sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.runner import average_response_time, prepare_workload

__all__ = ["Series", "FigureData", "figure5a", "figure5b", "figure6a", "figure6b", "FIGURES"]


@dataclass(frozen=True)
class Series:
    """One labelled curve: parallel ``xs`` and ``ys`` arrays."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(f"series {self.label!r}: xs and ys length mismatch")


@dataclass(frozen=True)
class FigureData:
    """All series of one regenerated figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: tuple[str, ...] = field(default=())

    def series_by_label(self, label: str) -> Series:
        """Look a series up by its exact label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")


def figure5a(
    config: ExperimentConfig = PAPER_CONFIG, *, n_joins: int = 40, epsilon: float = 0.3
) -> FigureData:
    """Figure 5(a): effect of the granularity parameter ``f``."""
    queries = prepare_workload(n_joins, config.n_queries, config.seed, config.params)
    series: list[Series] = []
    for f in config.f_values:
        ys = tuple(
            average_response_time(
                "treeschedule", queries, p=p, f=f, epsilon=epsilon, params=config.params
            )
            for p in config.site_counts
        )
        series.append(Series(label=f"TreeSchedule f={f:g}", xs=tuple(config.site_counts), ys=ys))
    sync_ys = tuple(
        average_response_time(
            "synchronous",
            queries,
            p=p,
            f=config.default_f,
            epsilon=epsilon,
            params=config.params,
        )
        for p in config.site_counts
    )
    series.append(Series(label="Synchronous", xs=tuple(config.site_counts), ys=sync_ys))
    return FigureData(
        figure_id="fig5a",
        title=f"Effect of granularity parameter f ({n_joins} joins, eps={epsilon:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: response time falls as f grows until the parallelism cap; "
            "large-f TreeSchedule beats Synchronous at every system size.",
        ),
    )


def figure5b(
    config: ExperimentConfig = PAPER_CONFIG, *, n_joins: int = 40, f: float | None = None
) -> FigureData:
    """Figure 5(b): effect of the resource-overlap parameter ``epsilon``."""
    f = config.default_f if f is None else f
    queries = prepare_workload(n_joins, config.n_queries, config.seed, config.params)
    series: list[Series] = []
    for eps in config.epsilon_values:
        ts = tuple(
            average_response_time(
                "treeschedule", queries, p=p, f=f, epsilon=eps, params=config.params
            )
            for p in config.site_counts
        )
        series.append(Series(label=f"TreeSchedule eps={eps:g}", xs=tuple(config.site_counts), ys=ts))
        sync = tuple(
            average_response_time(
                "synchronous", queries, p=p, f=f, epsilon=eps, params=config.params
            )
            for p in config.site_counts
        )
        series.append(Series(label=f"Synchronous eps={eps:g}", xs=tuple(config.site_counts), ys=sync))
    return FigureData(
        figure_id="fig5b",
        title=f"Effect of resource overlap eps ({n_joins} joins, f={f:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: TreeSchedule wins for every eps; the advantage is "
            "largest for small eps (long idle periods to share).",
        ),
    )


def figure6a(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    p_values: tuple[int, ...] = (20, 80),
    epsilon: float | None = None,
    f: float | None = None,
) -> FigureData:
    """Figure 6(a): effect of query size at two system sizes."""
    epsilon = config.default_epsilon if epsilon is None else epsilon
    f = config.default_f if f is None else f
    series: list[Series] = []
    cohorts = {
        size: prepare_workload(size, config.n_queries, config.seed, config.params)
        for size in config.query_sizes
    }
    for p in p_values:
        for algorithm, label in (("treeschedule", "TreeSchedule"), ("synchronous", "Synchronous")):
            ys = tuple(
                average_response_time(
                    algorithm, cohorts[size], p=p, f=f, epsilon=epsilon, params=config.params
                )
                for size in config.query_sizes
            )
            series.append(
                Series(label=f"{label} P={p}", xs=tuple(float(s) for s in config.query_sizes), ys=ys)
            )
    return FigureData(
        figure_id="fig6a",
        title=f"Effect of query size (eps={epsilon:g}, f={f:g})",
        x_label="number of joins",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: at fixed P, TreeSchedule's relative improvement over "
            "Synchronous grows monotonically with query size.",
        ),
    )


def figure6b(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    query_sizes: tuple[int, ...] = (20, 40),
    epsilon: float | None = None,
    f: float | None = None,
) -> FigureData:
    """Figure 6(b): TREESCHEDULE versus the OPTBOUND lower bound."""
    epsilon = config.default_epsilon if epsilon is None else epsilon
    f = config.default_f if f is None else f
    series: list[Series] = []
    for size in query_sizes:
        queries = prepare_workload(size, config.n_queries, config.seed, config.params)
        ts = tuple(
            average_response_time(
                "treeschedule", queries, p=p, f=f, epsilon=epsilon, params=config.params
            )
            for p in config.site_counts
        )
        series.append(Series(label=f"TreeSchedule {size} joins", xs=tuple(config.site_counts), ys=ts))
        lb = tuple(
            average_response_time(
                "optbound", queries, p=p, f=f, epsilon=epsilon, params=config.params
            )
            for p in config.site_counts
        )
        series.append(Series(label=f"OptBound {size} joins", xs=tuple(config.site_counts), ys=lb))
    return FigureData(
        figure_id="fig6b",
        title=f"TreeSchedule vs optimal lower bound (eps={epsilon:g}, f={f:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: average TreeSchedule response time stays much closer "
            "to OPTBOUND than the worst-case Theorem 5.1 factor suggests.",
        ),
    )


#: Figure registry for the CLI.
FIGURES = {
    "fig5a": figure5a,
    "fig5b": figure5b,
    "fig6a": figure6a,
    "fig6b": figure6b,
}
