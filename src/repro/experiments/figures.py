"""Series builders for every figure of the paper's evaluation (Section 6.2).

Each ``figure*`` function regenerates the data behind one paper figure as
a :class:`FigureData` bundle of labelled series; rendering (ASCII tables)
lives in :mod:`repro.experiments.report`.

All figures evaluate their sweep grid through
:class:`~repro.experiments.parallel.ParallelRunner`: pass ``workers=N``
to fan the grid over ``N`` processes.  Results are bit-identical for any
worker count (every sweep point is deterministic), so ``workers`` is
purely a wall-clock knob.

* :func:`figure5a` — effect of the granularity parameter ``f``
  (40-join queries, ``epsilon = 0.3``): TREESCHEDULE for each ``f`` plus
  SYNCHRONOUS, versus the number of sites.
* :func:`figure5b` — effect of the resource-overlap parameter
  ``epsilon`` (40-join queries, ``f`` fixed): both algorithms for each
  ``epsilon``, versus the number of sites.
* :func:`figure6a` — effect of query size (``epsilon = 0.5``,
  ``f = 0.7``): both algorithms at 20 and 80 sites, versus join count.
* :func:`figure6b` — TREESCHEDULE versus the OPTBOUND lower bound
  (20- and 40-join queries, ``f = 0.7``, ``epsilon = 0.5``), versus the
  number of sites.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.parallel import ParallelRunner, SweepPoint
from repro.store import ArtifactStore

__all__ = ["Series", "FigureData", "figure5a", "figure5b", "figure6a", "figure6b", "FIGURES"]


@dataclass(frozen=True)
class Series:
    """One labelled curve: parallel ``xs`` and ``ys`` arrays."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(f"series {self.label!r}: xs and ys length mismatch")


@dataclass(frozen=True)
class FigureData:
    """All series of one regenerated figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: tuple[str, ...] = field(default=())

    def series_by_label(self, label: str) -> Series:
        """Look a series up by its exact label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")


def _chunks(values: Sequence[float], size: int) -> Iterator[tuple[float, ...]]:
    for start in range(0, len(values), size):
        yield tuple(values[start : start + size])


def figure5a(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    n_joins: int = 40,
    epsilon: float = 0.3,
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Figure 5(a): effect of the granularity parameter ``f``."""
    sites = tuple(config.site_counts)
    points = [
        SweepPoint(
            "treeschedule", n_joins, config.n_queries, config.seed,
            p, f, epsilon, config.params, config.cluster,
        )
        for f in config.f_values
        for p in sites
    ]
    points += [
        SweepPoint(
            "synchronous", n_joins, config.n_queries, config.seed,
            p, config.default_f, epsilon, config.params, config.cluster,
        )
        for p in sites
    ]
    values = ParallelRunner(workers, store=store).run(points)
    curves = _chunks(values, len(sites))
    series = [
        Series(label=f"TreeSchedule f={f:g}", xs=sites, ys=next(curves))
        for f in config.f_values
    ]
    series.append(Series(label="Synchronous", xs=sites, ys=next(curves)))
    return FigureData(
        figure_id="fig5a",
        title=f"Effect of granularity parameter f ({n_joins} joins, eps={epsilon:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: response time falls as f grows until the parallelism cap; "
            "large-f TreeSchedule beats Synchronous at every system size.",
        ),
    )


def figure5b(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    n_joins: int = 40,
    f: float | None = None,
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Figure 5(b): effect of the resource-overlap parameter ``epsilon``."""
    f = config.default_f if f is None else f
    sites = tuple(config.site_counts)
    points = [
        SweepPoint(
            algorithm, n_joins, config.n_queries, config.seed,
            p, f, eps, config.params, config.cluster,
        )
        for eps in config.epsilon_values
        for algorithm in ("treeschedule", "synchronous")
        for p in sites
    ]
    values = ParallelRunner(workers, store=store).run(points)
    curves = _chunks(values, len(sites))
    series: list[Series] = []
    for eps in config.epsilon_values:
        series.append(
            Series(label=f"TreeSchedule eps={eps:g}", xs=sites, ys=next(curves))
        )
        series.append(
            Series(label=f"Synchronous eps={eps:g}", xs=sites, ys=next(curves))
        )
    return FigureData(
        figure_id="fig5b",
        title=f"Effect of resource overlap eps ({n_joins} joins, f={f:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: TreeSchedule wins for every eps; the advantage is "
            "largest for small eps (long idle periods to share).",
        ),
    )


def figure6a(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    p_values: tuple[int, ...] = (20, 80),
    epsilon: float | None = None,
    f: float | None = None,
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Figure 6(a): effect of query size at two system sizes."""
    epsilon = config.default_epsilon if epsilon is None else epsilon
    f = config.default_f if f is None else f
    if config.cluster is not None:
        p_values = (config.cluster.p,)
    sizes = tuple(config.query_sizes)
    points = [
        SweepPoint(
            algorithm, size, config.n_queries, config.seed,
            p, f, epsilon, config.params, config.cluster,
        )
        for p in p_values
        for algorithm in ("treeschedule", "synchronous")
        for size in sizes
    ]
    values = ParallelRunner(workers, store=store).run(points)
    curves = _chunks(values, len(sizes))
    xs = tuple(float(s) for s in sizes)
    series: list[Series] = []
    for p in p_values:
        for label in ("TreeSchedule", "Synchronous"):
            series.append(Series(label=f"{label} P={p}", xs=xs, ys=next(curves)))
    return FigureData(
        figure_id="fig6a",
        title=f"Effect of query size (eps={epsilon:g}, f={f:g})",
        x_label="number of joins",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: at fixed P, TreeSchedule's relative improvement over "
            "Synchronous grows monotonically with query size.",
        ),
    )


def figure6b(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    query_sizes: tuple[int, ...] = (20, 40),
    epsilon: float | None = None,
    f: float | None = None,
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Figure 6(b): TREESCHEDULE versus the OPTBOUND lower bound."""
    epsilon = config.default_epsilon if epsilon is None else epsilon
    f = config.default_f if f is None else f
    sites = tuple(config.site_counts)
    points = [
        SweepPoint(
            algorithm, size, config.n_queries, config.seed,
            p, f, epsilon, config.params, config.cluster,
        )
        for size in query_sizes
        for algorithm in ("treeschedule", "optbound")
        for p in sites
    ]
    values = ParallelRunner(workers, store=store).run(points)
    curves = _chunks(values, len(sites))
    series: list[Series] = []
    for size in query_sizes:
        series.append(
            Series(label=f"TreeSchedule {size} joins", xs=sites, ys=next(curves))
        )
        series.append(
            Series(label=f"OptBound {size} joins", xs=sites, ys=next(curves))
        )
    return FigureData(
        figure_id="fig6b",
        title=f"TreeSchedule vs optimal lower bound (eps={epsilon:g}, f={f:g})",
        x_label="number of sites",
        y_label="avg response time (s)",
        series=tuple(series),
        notes=(
            "Paper shape: average TreeSchedule response time stays much closer "
            "to OPTBOUND than the worst-case Theorem 5.1 factor suggests.",
        ),
    )


#: Figure registry for the CLI.
FIGURES = {
    "fig5a": figure5a,
    "fig5b": figure5b,
    "fig6a": figure6a,
    "fig6b": figure6b,
}
