"""Experiment runner: algorithms over seeded workloads, with averaging.

The comparison metric throughout Section 6 is "the average response times
of the schedules produced by the algorithms over all queries of the same
size".  :func:`prepare_workload` draws and cost-annotates a query cohort;
:func:`average_response_time` evaluates one algorithm at one sweep point.
Workloads are cached per ``(n_joins, n_queries, seed)`` because every
sweep point of a figure reuses the same twenty plans.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from functools import lru_cache

from repro.exceptions import ConfigurationError
from repro.core.resource_model import ConvexCombinationOverlap
from repro.core.tree_schedule import tree_schedule
from repro.baselines.hong import hong_schedule
from repro.baselines.opt_bound import opt_bound
from repro.baselines.synchronous import synchronous_schedule
from repro.cost.annotate import annotate_plan
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.plans.generator import GeneratedQuery, generate_workload

__all__ = [
    "ALGORITHMS",
    "prepare_workload",
    "response_time",
    "average_response_time",
]

#: Algorithm names accepted by :func:`response_time`.
ALGORITHMS = ("treeschedule", "synchronous", "hong", "optbound")


@lru_cache(maxsize=64)
def _cached_workload(
    n_joins: int, n_queries: int, seed: int, params: SystemParameters
) -> tuple[GeneratedQuery, ...]:
    queries = generate_workload(n_joins, n_queries, seed)
    for query in queries:
        annotate_plan(query.operator_tree, params)
    return tuple(queries)


def prepare_workload(
    n_joins: int,
    n_queries: int,
    seed: int,
    params: SystemParameters = PAPER_PARAMETERS,
) -> tuple[GeneratedQuery, ...]:
    """Draw and cost-annotate a reproducible cohort of random queries.

    Results are cached, so repeated sweep points share one workload
    object (annotation attaches specs in place; all algorithms read the
    same specs).
    """
    return _cached_workload(n_joins, n_queries, seed, params)


def response_time(
    algorithm: str,
    query: GeneratedQuery,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
) -> float:
    """Evaluate one algorithm on one annotated query.

    Parameters
    ----------
    algorithm:
        ``"treeschedule"``, ``"synchronous"``, ``"hong"`` (the XPRS-style
        pairing baseline), or ``"optbound"``.
    query:
        A cost-annotated :class:`~repro.plans.generator.GeneratedQuery`.
    p:
        Number of sites.
    f:
        Granularity parameter (ignored by ``synchronous``).
    epsilon:
        Resource-overlap parameter (EA2).
    params:
        Table 2 system parameters (supplies the communication model).
    """
    comm = params.communication_model()
    overlap = ConvexCombinationOverlap(epsilon)
    if algorithm == "treeschedule":
        return tree_schedule(
            query.operator_tree,
            query.task_tree,
            p=p,
            comm=comm,
            overlap=overlap,
            f=f,
        ).response_time
    if algorithm == "synchronous":
        return synchronous_schedule(
            query.operator_tree, query.task_tree, p=p, comm=comm, overlap=overlap
        ).response_time
    if algorithm == "hong":
        return hong_schedule(
            query.operator_tree, query.task_tree, p=p, comm=comm, overlap=overlap, f=f
        ).response_time
    if algorithm == "optbound":
        return opt_bound(
            query.operator_tree,
            query.task_tree,
            p=p,
            f=f,
            comm=comm,
            overlap=overlap,
        )
    raise ConfigurationError(
        f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
    )


def average_response_time(
    algorithm: str,
    queries: Sequence[GeneratedQuery],
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
) -> float:
    """Average :func:`response_time` over a query cohort."""
    if not queries:
        raise ConfigurationError("query cohort is empty")
    times = [
        response_time(algorithm, q, p=p, f=f, epsilon=epsilon, params=params)
        for q in queries
    ]
    return math.fsum(times) / len(times)
