"""Experiment runner: registered algorithms over seeded workloads.

The comparison metric throughout Section 6 is "the average response times
of the schedules produced by the algorithms over all queries of the same
size".  :func:`prepare_workload` draws a query cohort and binds it to an
immutable cost annotation; :func:`schedule_query` runs one registered
algorithm on one query; :func:`average_response_time` evaluates one
algorithm at one sweep point.

Algorithm dispatch goes through :mod:`repro.engine.registry` — the
experiment layer knows no algorithm names of its own.

Sharing model: the *structural* workload (query trees drawn from the
seeded generator) is cached per ``(n_joins, n_queries, seed)`` and
shared by every caller, never copied and never annotated in place.
Cost annotations are separate immutable
:class:`~repro.cost.annotate.PlanAnnotation` side tables, one per
``(workload, SystemParameters)`` pair, cached in a small in-process LRU
(size via ``REPRO_WORKLOAD_CACHE_SIZE``) and optionally in the
content-addressed :mod:`repro.store`.  Because nothing mutates the
shared trees, the historical per-call ``copy.deepcopy`` is gone: a
sensitivity sweep scaling one cost parameter gets a fresh annotation
view while every other caller keeps reading its own.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from collections.abc import Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.engine.metrics import (
    COUNTER_STORE_HITS,
    COUNTER_STORE_MISSES,
    MetricsRecorder,
)
from repro.core.cluster import ClusterSpec
from repro.engine.registry import ScheduleRequest, available_algorithms, get_algorithm
from repro.engine.result import ScheduleResult
from repro.cost.annotate import AnnotatedQuery, PlanAnnotation, compute_plan_annotation
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.plans.generator import GeneratedQuery, generate_workload
from repro.store import KIND_ANNOTATION, KIND_RESULT, ArtifactStore, resolve_store

__all__ = [
    "ALGORITHMS",
    "ENV_WORKLOAD_CACHE_SIZE",
    "prepare_workload",
    "schedule_query",
    "response_time",
    "average_response_time",
]


class _AlgorithmsView(Sequence[str]):
    """Deprecated live view of the registry's algorithm names.

    ``runner.ALGORITHMS`` was historically a tuple snapshotted at import
    time, so algorithms registered afterwards never appeared in it.  The
    name survives as this lazy sequence over
    :func:`~repro.engine.registry.available_algorithms`; new code should
    call the registry function directly.
    """

    def _names(self) -> tuple[str, ...]:
        return available_algorithms()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):  # slices supported like a tuple's
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _AlgorithmsView):
            return self._names() == other._names()
        if isinstance(other, (tuple, list)):
            return self._names() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names())

    def __repr__(self) -> str:
        return f"ALGORITHMS{self._names()!r}"


#: Deprecated alias: live, lazily-resolved registry view (see above).
ALGORITHMS = _AlgorithmsView()

#: Environment variable sizing the in-process annotated-workload LRU.
ENV_WORKLOAD_CACHE_SIZE = "REPRO_WORKLOAD_CACHE_SIZE"

_DEFAULT_CACHE_SIZE = 64

#: ``(n_joins, n_queries, seed)`` -> shared structural query cohort.
#: These trees are never annotated in place and never handed out copied;
#: immutability is enforced by the write-once spec contract
#: (:class:`~repro.exceptions.ImmutableAnnotationError`).
_STRUCTURAL_CACHE: OrderedDict[
    tuple[int, int, int], tuple[GeneratedQuery, ...]
] = OrderedDict()

#: ``(workload key, SystemParameters)`` -> per-query annotation views.
_ANNOTATION_CACHE: OrderedDict[
    tuple[tuple[int, int, int], SystemParameters], tuple[PlanAnnotation, ...]
] = OrderedDict()


def _cache_size() -> int:
    raw = os.environ.get(ENV_WORKLOAD_CACHE_SIZE)
    if raw is None:
        return _DEFAULT_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_WORKLOAD_CACHE_SIZE} must be a positive integer, got {raw!r}"
        ) from None
    if size < 1:
        raise ConfigurationError(
            f"{ENV_WORKLOAD_CACHE_SIZE} must be a positive integer, got {raw!r}"
        )
    return size


def _lru_get(cache: OrderedDict, key):
    try:
        cache.move_to_end(key)
        return cache[key]
    except KeyError:
        return None


def _lru_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    limit = _cache_size()
    while len(cache) > limit:
        cache.popitem(last=False)


def _structural_workload(
    n_joins: int, n_queries: int, seed: int
) -> tuple[GeneratedQuery, ...]:
    key = (n_joins, n_queries, seed)
    cohort = _lru_get(_STRUCTURAL_CACHE, key)
    if cohort is None:
        cohort = tuple(generate_workload(n_joins, n_queries, seed))
        _lru_put(_STRUCTURAL_CACHE, key, cohort)
    return cohort


def _annotation_store_payload(
    workload_key: tuple[int, int, int], params: SystemParameters
) -> dict:
    from repro.serialization import system_parameters_to_dict

    n_joins, n_queries, seed = workload_key
    return {
        "workload": {"n_joins": n_joins, "n_queries": n_queries, "seed": seed},
        "params": system_parameters_to_dict(params),
    }


def _annotations_from_store(
    store: ArtifactStore,
    key: str,
    cohort: tuple[GeneratedQuery, ...],
    params: SystemParameters,
) -> tuple[PlanAnnotation, ...] | None:
    """Rebuild the cohort's annotation views from a store entry.

    Any mismatch with the structural cohort (count, operator names)
    means the entry belongs to a different generator version and is
    treated as a miss.
    """
    from repro.serialization import operator_spec_from_dict

    value = store.get(KIND_ANNOTATION, key)
    if not isinstance(value, dict):
        return None
    payload = value.get("queries")
    if not isinstance(payload, list) or len(payload) != len(cohort):
        return None
    annotations = []
    try:
        for query, spec_dicts in zip(cohort, payload):
            specs = {
                name: operator_spec_from_dict(d) for name, d in spec_dicts.items()
            }
            if set(specs) != {op.name for op in query.operator_tree.operators}:
                return None
            annotations.append(
                PlanAnnotation(
                    op_tree=query.operator_tree, params=params, specs=specs
                )
            )
    except (ConfigurationError, AttributeError, TypeError):
        return None
    return tuple(annotations)


def _cohort_annotations(
    cohort: tuple[GeneratedQuery, ...],
    workload_key: tuple[int, int, int],
    params: SystemParameters,
    store: ArtifactStore | None,
) -> tuple[PlanAnnotation, ...]:
    cache_key = (workload_key, params)
    annotations = _lru_get(_ANNOTATION_CACHE, cache_key)
    if annotations is not None:
        return annotations
    key = None
    if store is not None:
        key = store.key(KIND_ANNOTATION, _annotation_store_payload(workload_key, params))
        annotations = _annotations_from_store(store, key, cohort, params)
    if annotations is None:
        annotations = tuple(
            compute_plan_annotation(query.operator_tree, params) for query in cohort
        )
        if store is not None and key is not None:
            from repro.serialization import operator_spec_to_dict

            store.put(
                KIND_ANNOTATION,
                key,
                {
                    "queries": [
                        {
                            name: operator_spec_to_dict(spec)
                            for name, spec in annotation.items()
                        }
                        for annotation in annotations
                    ]
                },
            )
    _lru_put(_ANNOTATION_CACHE, cache_key, annotations)
    return annotations


def prepare_workload(
    n_joins: int,
    n_queries: int,
    seed: int,
    params: SystemParameters = PAPER_PARAMETERS,
    *,
    store: ArtifactStore | None = None,
) -> tuple[AnnotatedQuery, ...]:
    """Draw a reproducible cohort and bind it to an immutable annotation.

    Returns one :class:`~repro.cost.annotate.AnnotatedQuery` per query:
    the *shared* structural query (cached per ``(n_joins, n_queries,
    seed)``; never copied) paired with the frozen
    :class:`~repro.cost.annotate.PlanAnnotation` for ``params``.  Two
    calls differing only in ``params`` share every tree object but see
    independent annotations, so re-annotation can never leak between
    callers — the write-once spec contract makes any attempt to rewrite
    a shared tree raise
    :class:`~repro.exceptions.ImmutableAnnotationError` instead.

    ``store`` (or the ``REPRO_CACHE_DIR`` environment default) caches
    the computed annotations content-addressed on disk; pass
    :data:`repro.store.NO_STORE` to force recomputation.
    """
    cohort = _structural_workload(n_joins, n_queries, seed)
    annotations = _cohort_annotations(
        cohort, (n_joins, n_queries, seed), params, resolve_store(store)
    )
    return tuple(
        AnnotatedQuery(query=query, annotation=annotation)
        for query, annotation in zip(cohort, annotations)
    )


def _result_store_payload(
    algorithm: str,
    cache_key: dict,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters,
    cluster: "ClusterSpec | None" = None,
) -> dict:
    from repro.serialization import cluster_spec_to_dict, system_parameters_to_dict

    payload = {
        "algorithm": algorithm,
        "query": cache_key,
        "p": p,
        "f": f,
        "epsilon": epsilon,
        "params": system_parameters_to_dict(params),
    }
    # A uniform cluster is the homogeneous cluster: omitting it keeps the
    # key — and therefore the warm cache — identical to runs that never
    # mentioned a cluster at all.
    if cluster is not None and not cluster.is_uniform():
        payload["cluster"] = cluster_spec_to_dict(cluster)
    return payload


def schedule_query(
    algorithm: str,
    query: AnnotatedQuery | GeneratedQuery,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
    metrics: MetricsRecorder | None = None,
    store: ArtifactStore | None = None,
    cache_key: dict | None = None,
    cluster: "ClusterSpec | None" = None,
) -> ScheduleResult:
    """Run one registered algorithm on one annotated query.

    Parameters
    ----------
    algorithm:
        Any name in :func:`repro.engine.registry.available_algorithms`
        (``"treeschedule"``, ``"synchronous"``, ``"hong"``,
        ``"optbound"``, ``"onedim"``, ``"malleable"``, plus anything
        registered by the caller).
    query:
        An :class:`~repro.cost.annotate.AnnotatedQuery` from
        :func:`prepare_workload` (its annotation is re-derived via the
        immutable ``with_params`` path when ``params`` differs), or a
        legacy :class:`~repro.plans.generator.GeneratedQuery` whose tree
        was annotated in place.
    p:
        Number of sites.
    f:
        Granularity parameter (ignored by algorithms that do not respect
        granularity, e.g. ``synchronous`` and ``malleable``).
    epsilon:
        Resource-overlap parameter (EA2).
    params:
        Table 2 system parameters (supplies the communication model).
    metrics:
        Optional recorder threaded into the algorithm.
    store, cache_key:
        When both are given, the full
        :class:`~repro.engine.result.ScheduleResult` is cached in the
        content-addressed store under ``cache_key`` (a JSON-safe dict
        identifying the query, e.g. workload coordinates plus index);
        hits skip the scheduler entirely and are tagged in the result's
        instrumentation counters (``store_hits`` / ``store_misses``).
    cluster:
        Optional :class:`~repro.core.cluster.ClusterSpec` for a
        heterogeneous cluster; its site count must equal ``p``.  A
        non-uniform spec is folded into the store key, so heterogeneous
        results never alias homogeneous ones.

    Raises
    ------
    ConfigurationError
        If ``algorithm`` is not registered.
    """
    scheduler = get_algorithm(algorithm)
    annotation = None
    if isinstance(query, AnnotatedQuery):
        annotation = query.annotation.with_params(params)
        query = query.query

    store = resolve_store(store) if cache_key is not None else None
    key = None
    if store is not None and cache_key is not None:
        from repro.serialization import schedule_result_from_dict

        payload = _result_store_payload(
            algorithm, cache_key, p=p, f=f, epsilon=epsilon, params=params,
            cluster=cluster,
        )
        key = store.key(KIND_RESULT, payload)
        cached = store.get(KIND_RESULT, key)
        if cached is not None:
            try:
                result = schedule_result_from_dict(cached)
            except ConfigurationError:
                result = None
            if result is not None:
                result.instrumentation.counters[COUNTER_STORE_HITS] = (
                    result.instrumentation.counters.get(COUNTER_STORE_HITS, 0.0) + 1.0
                )
                if metrics is not None:
                    metrics.count(COUNTER_STORE_HITS)
                return result

    request = ScheduleRequest(
        p=p, f=f, epsilon=epsilon, params=params, metrics=metrics,
        annotation=annotation, cluster=cluster,
    )
    result = scheduler(query, request)
    if store is not None and key is not None:
        from repro.serialization import schedule_result_to_dict

        result.instrumentation.counters[COUNTER_STORE_MISSES] = (
            result.instrumentation.counters.get(COUNTER_STORE_MISSES, 0.0) + 1.0
        )
        if metrics is not None:
            metrics.count(COUNTER_STORE_MISSES)
        store.put(KIND_RESULT, key, schedule_result_to_dict(result))
    return result


def response_time(
    algorithm: str,
    query: AnnotatedQuery | GeneratedQuery,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
    cluster: "ClusterSpec | None" = None,
) -> float:
    """Evaluate one algorithm on one annotated query (headline number)."""
    result = schedule_query(
        algorithm, query, p=p, f=f, epsilon=epsilon, params=params,
        cluster=cluster,
    )
    return result.makespan


def average_response_time(
    algorithm: str,
    queries: Sequence[AnnotatedQuery | GeneratedQuery],
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
    cluster: "ClusterSpec | None" = None,
) -> float:
    """Average :func:`response_time` over a query cohort."""
    if not queries:
        raise ConfigurationError("query cohort is empty")
    times = [
        response_time(
            algorithm, q, p=p, f=f, epsilon=epsilon, params=params,
            cluster=cluster,
        )
        for q in queries
    ]
    return math.fsum(times) / len(times)
