"""Experiment runner: registered algorithms over seeded workloads.

The comparison metric throughout Section 6 is "the average response times
of the schedules produced by the algorithms over all queries of the same
size".  :func:`prepare_workload` draws and cost-annotates a query cohort;
:func:`schedule_query` runs one registered algorithm on one query;
:func:`average_response_time` evaluates one algorithm at one sweep point.

Algorithm dispatch goes through :mod:`repro.engine.registry` — the
experiment layer knows no algorithm names of its own.  Workloads are
cached per ``(n_joins, n_queries, seed, params)`` because every sweep
point of a figure reuses the same query cohort; callers receive deep
copies so the in-place cost annotation of one experiment can never leak
into another (see :func:`prepare_workload`).
"""

from __future__ import annotations

import copy
import math
from collections.abc import Sequence
from functools import lru_cache

from repro.exceptions import ConfigurationError
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import ScheduleRequest, available_algorithms, get_algorithm
from repro.engine.result import ScheduleResult
from repro.cost.annotate import annotate_plan
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.plans.generator import GeneratedQuery, generate_workload

__all__ = [
    "ALGORITHMS",
    "prepare_workload",
    "schedule_query",
    "response_time",
    "average_response_time",
]


def _algorithms() -> tuple[str, ...]:
    return available_algorithms()


# Historical tuple of algorithm names; now sourced from the registry.
ALGORITHMS = _algorithms()


@lru_cache(maxsize=64)
def _cached_workload(
    n_joins: int, n_queries: int, seed: int, params: SystemParameters
) -> tuple[GeneratedQuery, ...]:
    queries = generate_workload(n_joins, n_queries, seed)
    for query in queries:
        annotate_plan(query.operator_tree, params)
    return tuple(queries)


def prepare_workload(
    n_joins: int,
    n_queries: int,
    seed: int,
    params: SystemParameters = PAPER_PARAMETERS,
) -> tuple[GeneratedQuery, ...]:
    """Draw and cost-annotate a reproducible cohort of random queries.

    Generation and annotation are cached per argument tuple, but callers
    receive a *deep copy* of the cached cohort: annotation attaches
    mutable :class:`~repro.core.cloning.OperatorSpec` objects to the
    operator tree in place, so handing out the cached trees themselves
    would alias every caller's workload onto one set of specs — a caller
    re-annotating (e.g. a sensitivity sweep scaling one cost parameter)
    would silently rewrite everyone else's cohort.  The copy preserves
    the internal sharing between each query's ``operator_tree`` and
    ``task_tree`` (they reference the same operator objects).
    """
    return copy.deepcopy(_cached_workload(n_joins, n_queries, seed, params))


def schedule_query(
    algorithm: str,
    query: GeneratedQuery,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
    metrics: MetricsRecorder | None = None,
) -> ScheduleResult:
    """Run one registered algorithm on one annotated query.

    Parameters
    ----------
    algorithm:
        Any name in :func:`repro.engine.registry.available_algorithms`
        (``"treeschedule"``, ``"synchronous"``, ``"hong"``,
        ``"optbound"``, ``"onedim"``, ``"malleable"``, plus anything
        registered by the caller).
    query:
        A cost-annotated :class:`~repro.plans.generator.GeneratedQuery`.
    p:
        Number of sites.
    f:
        Granularity parameter (ignored by algorithms that do not respect
        granularity, e.g. ``synchronous`` and ``malleable``).
    epsilon:
        Resource-overlap parameter (EA2).
    params:
        Table 2 system parameters (supplies the communication model).
    metrics:
        Optional recorder threaded into the algorithm.

    Raises
    ------
    ConfigurationError
        If ``algorithm`` is not registered.
    """
    scheduler = get_algorithm(algorithm)
    request = ScheduleRequest(
        p=p, f=f, epsilon=epsilon, params=params, metrics=metrics
    )
    return scheduler(query, request)


def response_time(
    algorithm: str,
    query: GeneratedQuery,
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
) -> float:
    """Evaluate one algorithm on one annotated query (headline number)."""
    result = schedule_query(
        algorithm, query, p=p, f=f, epsilon=epsilon, params=params
    )
    return result.makespan


def average_response_time(
    algorithm: str,
    queries: Sequence[GeneratedQuery],
    *,
    p: int,
    f: float,
    epsilon: float,
    params: SystemParameters = PAPER_PARAMETERS,
) -> float:
    """Average :func:`response_time` over a query cohort."""
    if not queries:
        raise ConfigurationError("query cohort is empty")
    times = [
        response_time(algorithm, q, p=p, f=f, epsilon=epsilon, params=params)
        for q in queries
    ]
    return math.fsum(times) / len(times)
