"""Robustness sweep: how far each scheduler's analytic promise degrades.

The Section 6 figures compare schedulers under the paper's idealized
runtime (exact work vectors, perfectly preemptable constant-capacity
resources, no stragglers).  This experiment re-runs the comparison with
the :mod:`repro.sim.faults` layer switched on: at each fault *intensity*
every query's schedule is executed by the fluid simulator under a
seed-deterministic :class:`~repro.sim.faults.FaultPlan`, and the metric
is the *degradation factor* — simulated response time over the analytic
Equation (3) promise.

The paper-adjacent result: TREESCHEDULE's balanced multi-dimensional
packings leave complementary idle capacity at every site, which absorbs
perturbations; SYNCHRONOUS concentrates work, so the same faults push
its realized response time proportionally further from its promise.
Degradation curves therefore separate the algorithms *again*, now on
robustness rather than raw response time.

Everything is deterministic: fault seeds derive from the sweep
coordinates alone, so the report is bit-identical for any
``ParallelRunner`` worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.engine.metrics import (
    COUNTER_FAULTS_INJECTED,
    COUNTER_WORK_RERUN,
    MetricsRecorder,
)
from repro.engine.result import ScheduleResult
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.experiments.config import PAPER_CONFIG, ExperimentConfig
from repro.experiments.figures import FigureData, Series
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import prepare_workload, schedule_query
from repro.sim.faults import FaultPlan, FaultSpec
from repro.sim.policies import SharingPolicy
from repro.sim.simulator import SimulationResult, simulate_phased
from repro.store import ArtifactStore, default_store

__all__ = [
    "RobustnessPoint",
    "evaluate_robustness_point",
    "simulate_result_under_faults",
    "robustness_sweep",
    "DEFAULT_INTENSITIES",
]

#: Fault intensities swept by default (0 = the paper's idealized runtime).
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Large co-prime stride separating per-query fault-seed streams.
_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class RobustnessPoint:
    """One coordinate of the robustness grid (algorithm x intensity).

    Attributes
    ----------
    algorithm, n_joins, n_queries, seed, p, f, epsilon, params:
        As in :class:`~repro.experiments.parallel.SweepPoint`.
    intensity:
        Fault intensity in ``[0, 1]`` passed to
        :meth:`~repro.sim.faults.FaultSpec.at_intensity`.
    fault_seed:
        Base seed of the fault-plan stream; per-query plans derive from
        it deterministically, so a point fully determines its value.
    policy:
        Sharing-policy value (:class:`~repro.sim.policies.SharingPolicy`
        ``.value`` string, kept primitive for cheap pickling).
    """

    algorithm: str
    n_joins: int
    n_queries: int
    seed: int
    p: int
    f: float
    epsilon: float
    intensity: float
    fault_seed: int
    policy: str = SharingPolicy.FAIR_SHARE.value
    params: SystemParameters = PAPER_PARAMETERS


def simulate_result_under_faults(
    result: ScheduleResult,
    spec: FaultSpec,
    seed: int,
    *,
    policy: SharingPolicy = SharingPolicy.FAIR_SHARE,
    metrics: MetricsRecorder | None = None,
) -> SimulationResult:
    """Execute one algorithm result's schedule under a fault plan.

    Builds the deterministic :class:`~repro.sim.faults.FaultPlan` for
    ``(spec, schedule, seed)``, simulates, and folds the
    ``faults_injected`` / ``work_rerun`` counters into both the optional
    recorder and the result's own
    :class:`~repro.engine.result.Instrumentation`, so fault exposure
    travels with the :class:`ScheduleResult` provenance.

    Raises
    ------
    ConfigurationError
        For bound-only results (nothing to simulate).
    """
    if result.phased_schedule is None:
        raise ConfigurationError(
            f"{result.algorithm or 'result'} is bound-only; nothing to simulate"
        )
    plan = FaultPlan.build(spec, result.phased_schedule, seed)
    sim = simulate_phased(result.phased_schedule, policy, plan=plan)
    report = sim.fault_report
    assert report is not None  # simulate_phased always attaches one for plans
    counters = result.instrumentation.counters
    counters[COUNTER_FAULTS_INJECTED] = (
        counters.get(COUNTER_FAULTS_INJECTED, 0.0) + report.faults_injected
    )
    counters[COUNTER_WORK_RERUN] = (
        counters.get(COUNTER_WORK_RERUN, 0.0) + report.work_rerun
    )
    if metrics is not None:
        metrics.count(COUNTER_FAULTS_INJECTED, report.faults_injected)
        metrics.count(COUNTER_WORK_RERUN, report.work_rerun)
    return sim


def evaluate_robustness_point(point: RobustnessPoint) -> float:
    """Average degradation factor (simulated / analytic) at one point.

    Module-level so it pickles for
    :meth:`~repro.experiments.parallel.ParallelRunner.run`.  Each query
    gets its own fault-plan seed derived from ``fault_seed`` and the
    query's index only, so the value is identical for any worker count.
    """
    policy = SharingPolicy(point.policy)
    spec = FaultSpec.at_intensity(point.intensity, epsilon=point.epsilon)
    queries = prepare_workload(
        point.n_joins, point.n_queries, point.seed, point.params
    )
    # Schedules depend only on (algorithm, query, p, f, epsilon, params)
    # — not on the fault coordinates — so caching them in the artifact
    # store shares the expensive scheduling step across every intensity
    # and policy of the robustness grid.
    store = default_store()
    factors = []
    for index, query in enumerate(queries):
        result = schedule_query(
            point.algorithm,
            query,
            p=point.p,
            f=point.f,
            epsilon=point.epsilon,
            params=point.params,
            store=store,
            cache_key={
                "workload": {
                    "n_joins": point.n_joins,
                    "n_queries": point.n_queries,
                    "seed": point.seed,
                },
                "index": index,
            }
            if store is not None
            else None,
        )
        if result.phased_schedule is None:
            continue
        sim = simulate_result_under_faults(
            result, spec, point.fault_seed + _SEED_STRIDE * index, policy=policy
        )
        factors.append(sim.slowdown)
    if not factors:
        raise ConfigurationError(
            f"{point.algorithm} produced no simulatable schedules"
        )
    return math.fsum(factors) / len(factors)


def robustness_sweep(
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    n_joins: int = 20,
    p: int = 20,
    algorithms: tuple[str, ...] = ("treeschedule", "synchronous"),
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    policy: SharingPolicy = SharingPolicy.FAIR_SHARE,
    fault_seed: int = 1996,
    workers: int = 1,
    metrics: MetricsRecorder | None = None,
    store: ArtifactStore | None = None,
) -> FigureData:
    """Sweep fault intensity x algorithm and report promise degradation.

    Parameters
    ----------
    config:
        Supplies workload size, seed and Table 2 parameters.
    n_joins, p:
        Workload and system size of the sweep.
    algorithms:
        Registered algorithm names to contrast (bound-only algorithms
        are rejected when their points are evaluated).
    intensities:
        Fault intensities in ``[0, 1]``; 0 reproduces the idealized
        runtime (degradation equals the plain sharing-policy penalty).
    policy:
        Sharing policy executed under perturbation.
    fault_seed:
        Base seed of the fault streams; the whole report is a
        deterministic function of the sweep coordinates and this seed.
    workers:
        Process count for the grid (identical results for any value).
    metrics:
        Optional recorder (sweep-level counters and timers).
    store:
        Optional :class:`~repro.store.ArtifactStore` caching point
        values (falls back to the ``REPRO_CACHE_DIR`` default).

    Returns
    -------
    FigureData
        One degradation-vs-intensity series per algorithm.
    """
    if not algorithms:
        raise ConfigurationError("robustness_sweep needs at least one algorithm")
    if not intensities:
        raise ConfigurationError("robustness_sweep needs at least one intensity")
    for intensity in intensities:
        if not 0.0 <= intensity <= 1.0:
            raise ConfigurationError(
                f"fault intensity must lie in [0, 1], got {intensity}"
            )
    points = [
        RobustnessPoint(
            algorithm=algorithm,
            n_joins=n_joins,
            n_queries=config.n_queries,
            seed=config.seed,
            p=p,
            f=config.default_f,
            epsilon=config.default_epsilon,
            intensity=intensity,
            fault_seed=fault_seed,
            policy=policy.value,
            params=config.params,
        )
        for algorithm in algorithms
        for intensity in intensities
    ]
    values = ParallelRunner(workers, metrics=metrics, store=store).run(
        points, evaluate=evaluate_robustness_point
    )
    xs = tuple(float(i) for i in intensities)
    series = tuple(
        Series(
            label=algorithm,
            xs=xs,
            ys=tuple(values[k * len(intensities) : (k + 1) * len(intensities)]),
        )
        for k, algorithm in enumerate(algorithms)
    )
    return FigureData(
        figure_id="robustness",
        title=(
            f"Degradation under fault injection ({n_joins} joins, P={p}, "
            f"{policy.value} sharing)"
        ),
        x_label="fault intensity",
        y_label="simulated / analytic response time",
        series=series,
        notes=(
            "Each point executes every query's schedule in the fluid "
            "simulator under a seed-deterministic FaultPlan "
            "(slowdowns, work skew, stragglers, site failures).",
            "Balanced multi-dimensional packings should degrade more "
            "gracefully than the one-dimensional adversary.",
        ),
    )
