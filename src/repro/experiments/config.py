"""Experiment configuration (the Section 6.1 methodology, parameterized).

:data:`PAPER_CONFIG` mirrors the paper's full sweep: twenty random queries
per size, 10-140 sites, overlap 0.1-0.7, granularity 0.3-0.9.
:func:`quick_config` shrinks the sweep for CI/benchmark runs while keeping
every qualitative shape intact (same workload distribution, same
parameter ranges, fewer samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError
from repro.core.cluster import ClusterSpec
from repro.cost.params import PAPER_PARAMETERS, SystemParameters

__all__ = ["ExperimentConfig", "PAPER_CONFIG", "quick_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experiment sweep.

    Attributes
    ----------
    site_counts:
        System sizes ``P`` to sweep (paper: 10 to 140).
    query_sizes:
        Join counts to sweep (paper: 10, 20, 30, 40, 50).
    n_queries:
        Random queries per size; results are averaged (paper: 20).
    seed:
        Workload RNG seed (fixed for byte-reproducible series).
    params:
        The Table 2 system parameters.
    f_values:
        Granularity parameters swept in Figure 5(a) (paper: 0.3-0.9; we
        include 0.1 to show the over-restrictive end).
    epsilon_values:
        Resource-overlap parameters swept in Figure 5(b)
        (paper: 10%-70%).
    default_f:
        Granularity used when f is held constant (paper: 0.7).
    default_epsilon:
        Overlap used when epsilon is held constant (paper: 0.5).
    cluster:
        Optional heterogeneous cluster (the CLI's ``--cluster``).  When
        set, it pins the site axis: every swept site count must equal
        ``cluster.p``.  A *uniform* spec is normalized away to ``None``
        so homogeneous runs stay byte- and cache-identical regardless of
        how the site count was spelled.
    """

    site_counts: tuple[int, ...] = (10, 20, 40, 60, 80, 100, 120, 140)
    query_sizes: tuple[int, ...] = (10, 20, 30, 40, 50)
    n_queries: int = 20
    seed: int = 19_960_604  # SIGMOD 1996, Montreal, June
    params: SystemParameters = field(default_factory=lambda: PAPER_PARAMETERS)
    f_values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    epsilon_values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7)
    default_f: float = 0.7
    default_epsilon: float = 0.5
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if not self.site_counts or any(p < 1 for p in self.site_counts):
            raise ConfigurationError("site_counts must be non-empty positive ints")
        if self.cluster is not None:
            if self.cluster.is_uniform():
                object.__setattr__(self, "cluster", None)
            elif any(p != self.cluster.p for p in self.site_counts):
                raise ConfigurationError(
                    f"cluster spec describes {self.cluster.p} sites but the "
                    f"sweep visits site counts {self.site_counts}"
                )
        if not self.query_sizes or any(j < 1 for j in self.query_sizes):
            raise ConfigurationError("query_sizes must be non-empty positive ints")
        if self.n_queries < 1:
            raise ConfigurationError(f"n_queries must be >= 1, got {self.n_queries}")
        if any(not 0.0 < f for f in self.f_values) or self.default_f <= 0.0:
            raise ConfigurationError("granularity parameters must be > 0")
        for eps in (*self.epsilon_values, self.default_epsilon):
            if not 0.0 <= eps <= 1.0:
                raise ConfigurationError(f"overlap parameter {eps} outside [0, 1]")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)


#: The paper's full sweep.
PAPER_CONFIG = ExperimentConfig()


def quick_config(
    n_queries: int = 5,
    site_counts: tuple[int, ...] = (10, 40, 80, 140),
    query_sizes: tuple[int, ...] = (10, 20, 40),
) -> ExperimentConfig:
    """A reduced sweep for CI and ``pytest-benchmark`` runs.

    Keeps the paper's parameter values but samples fewer queries, system
    sizes, and query sizes, so a full figure regenerates in seconds.
    """
    return PAPER_CONFIG.with_overrides(
        n_queries=n_queries,
        site_counts=site_counts,
        query_sizes=query_sizes,
        f_values=(0.1, 0.3, 0.7),
        epsilon_values=(0.1, 0.3, 0.7),
    )
