"""Per-run trace sessions: trace.json + events.jsonl + manifest.json.

A :class:`TraceSession` is the CLI-facing bundle of the observability
subsystem.  Entering it installs an enabled
:class:`~repro.obs.tracer.Tracer` as the ambient tracer (so every span
hook in the engine, kernels, simulator, and parallel runner lights up)
and opens a JSONL event log; exiting it writes three artifacts into the
trace directory:

``trace.json``
    Chrome trace-event / Perfetto JSON of the full span forest plus any
    extra timeline events registered with :meth:`TraceSession.add_events`
    (e.g. simulator timelines from :mod:`repro.obs.timeline`).
``events.jsonl``
    The structured event log — one JSON object per line, append-only,
    flushed as written, so a killed run keeps its prefix.
``manifest.json``
    The :class:`RunManifest`: what ran (target, argv, config and its
    content hash), where (interpreter, platform, numpy, git describe),
    with what cache traffic (store stats and the content keys of every
    sweep point the run touched), and a per-name span-time summary.

Nothing here writes to **stdout** — the byte-identity contract of the
experiment CLI (same figure bytes with tracing on or off) is enforced by
construction: trace output goes to files, diagnostics to stderr.

The manifest's ``config_hash`` is :func:`repro.store.content_key` over
the embedded config payload, i.e. the same hashing scheme (schema tag +
canonical JSON + SHA-256) that addresses the artifact store — so CI can
recompute it from the manifest alone, and the recorded ``point_keys``
can be checked against the store's ``point/`` entries byte-for-byte.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.obs.export import tracer_events, validate_trace_events, write_trace
from repro.obs.tracer import Tracer, use_tracer
from repro.store import content_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

__all__ = [
    "MANIFEST_SCHEMA",
    "TRACE_FILE",
    "EVENTS_FILE",
    "MANIFEST_FILE",
    "RunManifest",
    "RunLog",
    "TraceSession",
    "git_describe",
    "collect_point_keys",
]

#: Schema tag of ``manifest.json`` (bump on incompatible layout changes).
MANIFEST_SCHEMA = "repro-manifest/1"

#: File names inside a trace directory.
TRACE_FILE = "trace.json"
EVENTS_FILE = "events.jsonl"
MANIFEST_FILE = "manifest.json"

#: Content-key kind under which config hashes are computed.  Not a store
#: kind (nothing is stored under it) — it only namespaces the digest.
_CONFIG_KIND = "manifest-config"


def git_describe(cwd: str | os.PathLike[str] | None = None) -> str | None:
    """``git describe --always --dirty`` of the repo around ``cwd``.

    Returns ``None`` when git is unavailable or ``cwd`` is not inside a
    work tree — manifests must be writable from an installed package.
    """
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _numpy_version() -> str | None:
    """Installed numpy version, or ``None`` (numpy is an optional extra)."""
    try:
        import numpy
    except Exception:  # pragma: no cover - depends on the environment
        return None
    return getattr(numpy, "__version__", None)


def collect_point_keys(tracer: Tracer) -> list[str]:
    """Store content keys of every sweep point the traced run touched.

    The parallel runner stamps each ``point`` span with the point's
    ``store_key`` attribute (when a store is attached); this gathers
    them, deduplicated and sorted, for the manifest — the hook CI uses
    to cross-check the manifest against the store's ``point/`` entries.
    """
    keys = {
        span.attributes["store_key"]
        for span in tracer.iter_spans()
        if span.name == "point" and span.attributes.get("store_key")
    }
    return sorted(keys)


@dataclass
class RunManifest:
    """Everything needed to identify, reproduce, and audit one run.

    Attributes
    ----------
    target, argv:
        What was asked for (experiment target and the full CLI argv).
    config:
        Canonical-JSON-ready payload of the experiment config (already
        passed through the store's ``_jsonable`` conversion), or ``None``
        for targets that take no config.
    config_hash:
        :func:`repro.store.content_key` over :attr:`config` — the same
        schema-tagged SHA-256 scheme the artifact store uses, so the
        hash is recomputable from the manifest alone.
    seed:
        Workload seed of the run (from the config when present).
    git, python_version, implementation, platform, numpy_version:
        Environment provenance.
    store_root, store_stats:
        Cache directory and hit/miss/write accounting (``None`` / empty
        when no store was attached).
    point_keys:
        Content keys of the sweep points this run read or wrote in the
        store (see :func:`collect_point_keys`).
    span_summary:
        Per-span-name ``{"count", "seconds"}`` aggregate from
        :meth:`repro.obs.tracer.Tracer.summary`.
    wall_seconds:
        Wall-clock duration of the session (enter to exit).
    """

    target: str
    argv: list[str] = field(default_factory=list)
    config: Any = None
    config_hash: str | None = None
    seed: int | None = None
    git: str | None = None
    python_version: str = ""
    implementation: str = ""
    platform: str = ""
    numpy_version: str | None = None
    store_root: str | None = None
    store_stats: dict[str, int] = field(default_factory=dict)
    point_keys: list[str] = field(default_factory=list)
    span_summary: dict[str, dict[str, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view, schema-tagged, ready for ``json.dump``."""
        return {
            "schema": MANIFEST_SCHEMA,
            "target": self.target,
            "argv": list(self.argv),
            "config": self.config,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "git": self.git,
            "python_version": self.python_version,
            "implementation": self.implementation,
            "platform": self.platform,
            "numpy_version": self.numpy_version,
            "store_root": self.store_root,
            "store_stats": dict(self.store_stats),
            "point_keys": list(self.point_keys),
            "span_summary": {
                name: dict(entry) for name, entry in self.span_summary.items()
            },
            "wall_seconds": self.wall_seconds,
        }


class RunLog:
    """Append-only JSONL event log, flushed per event.

    Each :meth:`emit` call writes one JSON object line with the event
    name and a ``t`` offset (seconds since the log was opened, monotonic
    clock), so a killed run keeps every event it got to.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._start = time.perf_counter()

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (silently dropped after :meth:`close`)."""
        if self._fh.closed:
            return
        record = {
            "event": event,
            "t": round(time.perf_counter() - self._start, 6),
            **fields,
        }
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class TraceSession:
    """One traced CLI run: ambient tracer + event log + trace artifacts.

    Usage::

        with TraceSession("/tmp/t", target="fig6a", argv=sys.argv[1:],
                          config=config) as session:
            ...   # spans record through the ambient tracer
            session.log.emit("figure", name="fig6a", seconds=elapsed)
        # exit wrote trace.json, manifest.json; events.jsonl is closed

    Parameters
    ----------
    trace_dir:
        Directory receiving the three artifacts (created if missing).
        ``None`` runs the session *without* file output — tracing is
        still enabled and :meth:`summary_lines` still works (the CLI's
        bare ``--trace`` mode, which prints the summary to stderr).
    target, argv:
        Recorded verbatim in the manifest.
    config:
        An :class:`~repro.experiments.config.ExperimentConfig` (or any
        dataclass) hashed into ``config_hash`` via the store's canonical
        JSON; ``None`` for config-free targets.
    store:
        The run's :class:`~repro.store.ArtifactStore`, read at exit for
        stats (pass the live object; it is not used for storage here).
    """

    def __init__(
        self,
        trace_dir: str | os.PathLike[str] | None,
        *,
        target: str,
        argv: list[str] | None = None,
        config: Any = None,
        store: "ArtifactStore | None" = None,
    ) -> None:
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.target = target
        self.argv = list(argv) if argv else []
        self.config = config
        self.store = store
        self.tracer = Tracer(enabled=True)
        self.log: RunLog | None = None
        #: Extra trace events (simulator timelines, ...) merged into
        #: ``trace.json`` after the span events.
        self.extra_events: list[dict[str, Any]] = []
        self._cm: Any = None
        self._started = 0.0

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceSession":
        self._started = time.perf_counter()
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            self.log = RunLog(self.trace_dir / EVENTS_FILE)
            self.log.emit("run_start", target=self.target, argv=self.argv)
        self._cm = use_tracer(self.tracer)
        self._cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._cm.__exit__(exc_type, exc, tb)
        if self.log is not None:
            self.log.emit(
                "run_end",
                ok=exc_type is None,
                spans=sum(1 for _ in self.tracer.iter_spans()),
            )
        if self.trace_dir is not None:
            self.write_artifacts()
        if self.log is not None:
            self.log.close()
        return False

    # ------------------------------------------------------------------
    # Events & artifacts
    # ------------------------------------------------------------------
    def add_events(self, events: list[dict[str, Any]]) -> None:
        """Merge extra (already trace-formatted) events into ``trace.json``."""
        self.extra_events.extend(events)

    def trace_events(self) -> list[dict[str, Any]]:
        """Span events of this run's tracer plus the registered extras."""
        events = tracer_events(
            self.tracer, pid=0, process_name="repro", thread_name=self.target
        )
        events.extend(self.extra_events)
        return events

    def build_manifest(self) -> RunManifest:
        """Assemble the :class:`RunManifest` from the session's state."""
        config_payload = None
        config_hash = None
        seed = None
        if self.config is not None:
            from repro.store.artifact_store import _jsonable

            config_payload = _jsonable(self.config)
            config_hash = content_key(_CONFIG_KIND, config_payload)
            seed = getattr(self.config, "seed", None)
        stats: dict[str, int] = {}
        root: str | None = None
        if self.store is not None and hasattr(self.store, "stats"):
            stats = self.store.stats.snapshot()
            root = str(self.store.root)
        return RunManifest(
            target=self.target,
            argv=self.argv,
            config=config_payload,
            config_hash=config_hash,
            seed=seed,
            git=git_describe(),
            python_version=sys.version,
            implementation=platform.python_implementation(),
            platform=platform.platform(),
            numpy_version=_numpy_version(),
            store_root=root,
            store_stats=stats,
            point_keys=collect_point_keys(self.tracer),
            span_summary=self.tracer.summary(),
            wall_seconds=time.perf_counter() - self._started,
        )

    def write_artifacts(self) -> None:
        """Write ``trace.json`` and ``manifest.json`` into the trace dir.

        The trace is schema-checked before writing; problems are a bug
        in an exporter, so they raise rather than emit a broken file.
        """
        assert self.trace_dir is not None
        events = self.trace_events()
        problems = validate_trace_events({"traceEvents": events})
        if problems:  # pragma: no cover - exporter invariant
            raise ValueError(
                f"refusing to write invalid trace: {problems[:3]}"
            )
        write_trace(str(self.trace_dir / TRACE_FILE), events)
        manifest = self.build_manifest()
        with open(self.trace_dir / MANIFEST_FILE, "w", encoding="utf-8") as fh:
            json.dump(manifest.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def summary_lines(self) -> list[str]:
        """Human-readable per-span-name summary (for stderr reporting)."""
        summary = self.tracer.summary()
        if not summary:
            return ["[trace] no spans recorded"]
        width = max(len(name) for name in summary)
        lines = ["[trace] span summary (name, count, total seconds):"]
        for name, entry in summary.items():
            lines.append(
                f"[trace]   {name.ljust(width)}  "
                f"{int(entry['count']):6d}  {entry['seconds']:.6f}s"
            )
        return lines

    def __repr__(self) -> str:
        where = str(self.trace_dir) if self.trace_dir else "no files"
        return f"TraceSession({self.target!r}, {where})"
