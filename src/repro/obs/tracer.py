"""Zero-dependency hierarchical span tracer.

A :class:`Span` is one timed region of execution — schedule construction,
one shelf packing, one simulated phase, one sweep point — with a name,
JSON-safe attributes, and children.  A :class:`Tracer` collects span
trees: entering ``tracer.span("shelf", label=...)`` opens a child of the
*current* span (propagated through a :mod:`contextvars` variable, so
nesting follows the call stack even through generators and callbacks) and
closing it records a monotonic-clock duration (:func:`time.perf_counter`,
the same clock :class:`~repro.engine.metrics.MetricsRecorder` timers use).

Design constraints, in order:

1. **A disabled tracer is a no-op.**  ``Tracer(enabled=False).span(...)``
   returns a shared, allocation-free context manager; it never reads the
   clock, never touches the contextvar, and never allocates a
   :class:`Span`.  Library code can therefore call the ambient tracer
   unconditionally — the fast path costs one attribute check.
2. **Bounded overhead when enabled.**  One ``perf_counter`` call on
   enter, one on exit, one contextvar set/reset pair, one small object.
   No locks, no I/O, no string formatting until export.
3. **Serializable.**  :func:`span_to_dict` flattens a span tree into
   plain dicts with *relative* offsets (children are offset from their
   parent's start), so trees survive pickling across process boundaries
   and can be re-rooted onto a different clock base with
   :func:`span_from_dict` — the mechanism behind the parallel runner's
   cross-process span stitching.

The tracer *absorbs* the historical :class:`MetricsRecorder` as its
counter/timer backend: ``tracer.count(...)`` and ``tracer.timer(...)``
delegate to :attr:`Tracer.metrics`, so call sites that only have a tracer
still feed the same counter vocabulary the kernels use.

Ambient activation
------------------
:func:`use_tracer` installs a tracer in a context variable and
:func:`current_tracer` retrieves it (default: the shared disabled
:data:`NULL_TRACER`).  The scheduling kernels, driver, simulator and
runner all consult the ambient tracer, so enabling tracing is one
``with use_tracer(Tracer()):`` at the top of a run — no signature churn
through six layers of the stack.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.metrics import MetricsRecorder

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "span_to_dict",
    "span_from_dict",
]


@dataclass
class Span:
    """One timed, named, attributed region of execution.

    Attributes
    ----------
    name:
        Span vocabulary name (see DESIGN.md §2.5 for the table).
    start:
        :func:`time.perf_counter` value at entry (monotonic; comparable
        only to other spans recorded in the same process).
    end:
        Clock value at exit; ``None`` while the span is open.
    attributes:
        JSON-safe key/value annotations (algorithm name, ``p``, shelf
        label, cache key, ...).
    children:
        Completed sub-spans, in completion order.
    """

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Span duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, parents first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds:.6f}s, "
            f"{len(self.children)} children)"
        )


class _NullSpanHandle:
    """The shared context manager a disabled tracer hands out.

    Allocation-free: one module-level instance serves every disabled
    ``span()`` call, yields ``None``, and swallows nothing (exceptions
    propagate untouched).
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_HANDLE = _NullSpanHandle()

#: The open span the next ``tracer.span(...)`` call will parent under,
#: paired with the tracer that owns it.  Spans parent only under spans
#: of the *same* tracer: when two tracers are live in one context (the
#: parallel runner's inline path opens a fresh local tracer inside the
#: ambient one), each builds its own tree instead of leaking spans into
#: the other's.
_CURRENT_SPAN: ContextVar["tuple[Tracer, Span] | None"] = ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Collects hierarchical spans plus counter/timer metrics.

    Parameters
    ----------
    enabled:
        ``False`` turns every operation into a no-op (see module docs).
    metrics:
        Counter/timer backend; an owned
        :class:`~repro.engine.metrics.MetricsRecorder` is created lazily
        for enabled tracers so a disabled tracer allocates nothing.
    """

    __slots__ = ("enabled", "roots", "_metrics")

    def __init__(
        self, enabled: bool = True, *, metrics: "MetricsRecorder | None" = None
    ) -> None:
        self.enabled = enabled
        #: Completed top-level spans, in completion order.
        self.roots: list[Span] = []
        self._metrics = metrics

    @property
    def metrics(self) -> "MetricsRecorder":
        """The tracer's counter/timer backend (created on first use)."""
        if self._metrics is None:
            # Deferred so importing repro.obs never drags the engine
            # package in (core modules import repro.obs, the engine
            # imports core — a module-level import would cycle).
            from repro.engine.metrics import MetricsRecorder

            self._metrics = MetricsRecorder()
        return self._metrics

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """Open a child span of the current span (context manager).

        Yields the open :class:`Span` (mutate ``.attributes`` freely
        before exit) — or ``None`` when the tracer is disabled.
        """
        if not self.enabled:
            return _NULL_HANDLE
        return self._record(name, attributes)

    @contextmanager
    def _record(self, name: str, attributes: dict[str, Any]) -> Iterator[Span]:
        parent = self._current_span()
        span = Span(name=name, start=time.perf_counter(), attributes=attributes)
        token = _CURRENT_SPAN.set((self, span))
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            _CURRENT_SPAN.reset(token)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    def _current_span(self) -> Span | None:
        """The open span *of this tracer* in the current context."""
        current = _CURRENT_SPAN.get()
        if current is None or current[0] is not self:
            return None
        return current[1]

    def adopt(self, span: Span) -> None:
        """Attach an externally built span tree under the current span.

        Used by the parallel runner to re-root span trees serialized by
        worker processes; a disabled tracer drops the span.
        """
        if not self.enabled:
            return
        parent = self._current_span()
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    # ------------------------------------------------------------------
    # Counter/timer backend (the absorbed MetricsRecorder surface)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Add to a counter on the backend recorder (no-op when disabled)."""
        if self.enabled:
            self.metrics.count(name, amount)

    def timer(self, name: str):
        """Accumulating wall-clock timer context (no-op when disabled)."""
        if not self.enabled:
            return _NULL_HANDLE
        return self.metrics.timer(name)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first over all roots."""
        for root in self.roots:
            yield from root.iter_spans()

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregate: span count and total seconds.

        The span-tree summary embedded in run manifests; sorted by name
        so the output is deterministic regardless of completion order.
        """
        totals: dict[str, dict[str, float]] = {}
        for span in self.iter_spans():
            entry = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += span.seconds
        return {name: totals[name] for name in sorted(totals)}

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.roots)} roots)"


#: The shared disabled tracer: the ambient default everywhere.
NULL_TRACER = Tracer(enabled=False)

_ACTIVE_TRACER: ContextVar[Tracer] = ContextVar(
    "repro_obs_active_tracer", default=NULL_TRACER
)


def current_tracer() -> Tracer:
    """The ambient tracer (:data:`NULL_TRACER` unless one is installed)."""
    return _ACTIVE_TRACER.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


# ----------------------------------------------------------------------
# Serialization (cross-process span stitching)
# ----------------------------------------------------------------------
def span_to_dict(span: Span, *, base: float | None = None) -> dict[str, Any]:
    """Flatten a span tree into plain dicts with relative offsets.

    ``offset`` is the span's start relative to ``base`` (its parent's
    start; the root defaults to offset 0), so the dict carries no
    process-local clock values and can be re-rooted anywhere.
    """
    base = span.start if base is None else base
    return {
        "name": span.name,
        "offset": span.start - base,
        "seconds": span.seconds,
        "attributes": dict(span.attributes),
        "children": [
            span_to_dict(child, base=span.start) for child in span.children
        ],
    }


def span_from_dict(payload: dict[str, Any], *, base: float = 0.0) -> Span:
    """Rebuild a :func:`span_to_dict` tree on a new clock base.

    ``base`` becomes the absolute start of the root's parent frame: the
    rebuilt root starts at ``base + payload["offset"]``.  Used by the
    parallel runner to graft worker span trees onto the parent process's
    timeline.
    """
    start = base + float(payload.get("offset", 0.0))
    span = Span(
        name=str(payload.get("name", "")),
        start=start,
        end=start + float(payload.get("seconds", 0.0)),
        attributes=dict(payload.get("attributes", {})),
    )
    span.children = [
        span_from_dict(child, base=start) for child in payload.get("children", [])
    ]
    return span
