"""Zero-dependency time-series metrics: instruments, sketches, exposition.

The tracing subsystem (PR 5) captures *spans* — one timed region per
event.  The serve layer additionally needs *continuous* signals: queue
depths, pool utilization, governor pressure, per-class latency
percentiles, each sampled on the service's **virtual** clock so the
stream is a deterministic function of the run config.  This module is
the storage and exposition layer for those signals; the sampling policy
itself lives in :mod:`repro.serve.telemetry`.

Three instrument kinds, mirroring the Prometheus data model:

:class:`CounterInstrument`
    Monotone non-decreasing total (completions, sheds).  Attempting to
    move one backwards raises — the validator re-checks monotonicity on
    the exported stream.
:class:`GaugeInstrument`
    A value that goes both ways (queue depth, pressure, utilization).
:class:`HistogramInstrument`
    A deterministic fixed-boundary **log-bucket sketch**
    (:class:`LogBucketSketch`): bucket ``i`` covers
    ``(lo·growth^(i-1), lo·growth^i]``, so a quantile query returns the
    upper boundary of the bucket holding the exact nearest-rank order
    statistic — never more than one ``growth`` factor above the true
    value.  No stored samples, no randomness, O(buckets) memory.
    Supports both cumulative and *windowed* quantiles (observations
    since the previous sample tick).

A :class:`TimeSeriesRegistry` owns the instruments and the sample
stream: :meth:`TimeSeriesRegistry.sample` appends one plain-dict record
per instrument at an explicit timestamp (the caller's virtual clock).
Two exposition formats are built in:

* :meth:`TimeSeriesRegistry.prometheus_text` — the Prometheus text
  snapshot of final instrument states (``# HELP``/``# TYPE``,
  cumulative ``_bucket{le=...}`` lines for histograms);
* :meth:`TimeSeriesRegistry.jsonl` — the full sample stream, one JSON
  object per line, schema-checked by :func:`validate_metrics_payload`
  exactly as :func:`repro.obs.export.validate_trace_events` checks
  trace files.

Import-weight contract: stdlib only (this module is reachable from
``import repro.obs``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

__all__ = [
    "METRICS_SCHEMA",
    "INSTRUMENT_TYPES",
    "LogBucketSketch",
    "CounterInstrument",
    "GaugeInstrument",
    "HistogramInstrument",
    "TimeSeriesRegistry",
    "validate_metrics_payload",
]

#: Schema tag stamped on every exported sample record.
METRICS_SCHEMA = "repro-metrics/1"

#: Instrument kinds the registry (and the validator) know.
INSTRUMENT_TYPES = ("counter", "gauge", "histogram")

#: Quantiles recorded per histogram sample (cumulative and windowed).
SKETCH_QUANTILES = (50.0, 95.0, 99.0)


def _finite_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def _fmt(value: float) -> str:
    """Deterministic Prometheus-text number rendering."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class LogBucketSketch:
    """Deterministic log-bucket histogram sketch.

    Finite bucket ``i`` (``0 <= i < buckets``) has upper boundary
    ``lo * growth**i``; bucket 0 additionally absorbs everything in
    ``(0, lo]`` (and any non-positive observation), and one overflow
    bucket catches values past the largest finite boundary.  With the
    defaults (``lo=1e-3``, ``growth=2**0.25``, 96 buckets) the finite
    range tops out at ``1e-3 * 2**23.75`` ≈ 1.4e4 seconds with a
    guaranteed relative quantile error of at most ``growth - 1`` ≈ 19%.

    :meth:`quantile` uses the same nearest-rank rule as
    ``ServiceReport`` (``rank = max(1, ceil(q/100 · count))``), so the
    exact order statistic lands in the bucket whose upper boundary the
    sketch returns: ``exact <= sketch <= exact * growth`` for any
    observation above ``lo``.
    """

    __slots__ = ("lo", "growth", "boundaries", "counts", "window_counts", "count", "total")

    def __init__(self, *, lo: float = 1e-3, growth: float = 2.0 ** 0.25, buckets: int = 96) -> None:
        if not lo > 0.0 or not math.isfinite(lo):
            raise ValueError(f"lo must be a positive finite number, got {lo!r}")
        if not growth > 1.0 or not math.isfinite(growth):
            raise ValueError(f"growth must be > 1, got {growth!r}")
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        self.lo = float(lo)
        self.growth = float(growth)
        #: Upper boundaries of the finite buckets, strictly increasing.
        self.boundaries: tuple[float, ...] = tuple(
            self.lo * self.growth ** i for i in range(buckets)
        )
        # One extra slot is the overflow (+Inf) bucket.
        self.counts = [0] * (buckets + 1)
        self.window_counts = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0

    def _bucket_index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value > self.boundaries[-1]:
            return len(self.boundaries)
        # ceil(log_growth(value / lo)), nudged so exact boundaries map to
        # their own bucket; the linear confirm step keeps float log noise
        # from ever crossing a boundary.
        i = int(math.ceil(math.log(value / self.lo) / math.log(self.growth) - 1e-12))
        i = max(0, min(i, len(self.boundaries) - 1))
        while i > 0 and value <= self.boundaries[i - 1]:
            i -= 1
        while value > self.boundaries[i]:
            i += 1
        return i

    def observe(self, value: float) -> None:
        """Record one observation (cumulative and current window)."""
        i = self._bucket_index(float(value))
        self.counts[i] += 1
        self.window_counts[i] += 1
        self.count += 1
        self.total += float(value)

    def mark_window(self) -> None:
        """Close the current window (called at each sample tick)."""
        for i in range(len(self.window_counts)):
            self.window_counts[i] = 0

    def _quantile_over(self, counts: list[int], q: float) -> float:
        population = sum(counts)
        if population == 0:
            return 0.0
        rank = min(population, max(1, math.ceil(q / 100.0 * population)))
        seen = 0
        for i, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                # The overflow bucket has no finite upper boundary;
                # report the largest finite one (documented saturation).
                return self.boundaries[min(i, len(self.boundaries) - 1)]
        return self.boundaries[-1]  # pragma: no cover - defensive

    def quantile(self, q: float) -> float:
        """Cumulative nearest-rank quantile (``q`` in percent)."""
        return self._quantile_over(self.counts, q)

    def window_quantile(self, q: float) -> float:
        """Quantile over the observations since the last window mark."""
        return self._quantile_over(self.window_counts, q)

    @property
    def window_count(self) -> int:
        """Observations recorded since the last window mark."""
        return sum(self.window_counts)

    def bucket_pairs(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_boundary, count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for boundary, bucket_count in zip(self.boundaries, self.counts):
            running += bucket_count
            pairs.append((boundary, running))
        pairs.append((math.inf, running + self.counts[-1]))
        return pairs


class _Instrument:
    """Shared naming/help plumbing of the three instrument kinds."""

    kind = ""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text

    def sample_record(self, at: float) -> dict[str, Any]:
        raise NotImplementedError

    def prometheus_lines(self) -> list[str]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class CounterInstrument(_Instrument):
    """Monotone non-decreasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the total (negative amounts are a caller bug)."""
        if amount < 0.0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {amount})")
        self.value += float(amount)

    def set_total(self, total: float) -> None:
        """Jump to an externally tracked total (mirroring a recorder).

        Still monotone: totals below the current value raise.
        """
        if total < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot go from {self.value} back to {total}"
            )
        self.value = float(total)

    def sample_record(self, at: float) -> dict[str, Any]:
        return {"t": at, "name": self.name, "type": self.kind, "value": self.value}

    def prometheus_lines(self) -> list[str]:
        return [*self._header(), f"{self.name} {_fmt(self.value)}"]


class GaugeInstrument(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def sample_record(self, at: float) -> dict[str, Any]:
        return {"t": at, "name": self.name, "type": self.kind, "value": self.value}

    def prometheus_lines(self) -> list[str]:
        return [*self._header(), f"{self.name} {_fmt(self.value)}"]


class HistogramInstrument(_Instrument):
    """A :class:`LogBucketSketch` with instrument naming on top."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        *,
        lo: float = 1e-3,
        growth: float = 2.0 ** 0.25,
        buckets: int = 96,
    ) -> None:
        super().__init__(name, help_text)
        self.sketch = LogBucketSketch(lo=lo, growth=growth, buckets=buckets)

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def sample_record(self, at: float) -> dict[str, Any]:
        sketch = self.sketch
        record: dict[str, Any] = {
            "t": at,
            "name": self.name,
            "type": self.kind,
            "count": sketch.count,
            "sum": sketch.total,
            "quantiles": {
                f"p{q:g}": sketch.quantile(q) for q in SKETCH_QUANTILES
            },
            "window_count": sketch.window_count,
            "window_quantiles": {
                f"p{q:g}": sketch.window_quantile(q) for q in SKETCH_QUANTILES
            },
        }
        sketch.mark_window()
        return record

    def prometheus_lines(self) -> list[str]:
        lines = self._header()
        for boundary, cumulative in self.sketch.bucket_pairs():
            le = "+Inf" if math.isinf(boundary) else _fmt(boundary)
            lines.append(f'{self.name}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{self.name}_sum {_fmt(self.sketch.total)}")
        lines.append(f"{self.name}_count {self.sketch.count}")
        return lines


class TimeSeriesRegistry:
    """Named instruments plus the timestamped sample stream they feed.

    Instruments register on first use (``counter``/``gauge``/
    ``histogram`` are get-or-create; re-registering a name as a
    different kind raises).  :meth:`sample` appends one record per
    instrument, in registration order, at the caller-supplied timestamp
    — virtual seconds in the serve layer, so two identical runs produce
    byte-identical streams.  Timestamps must be non-decreasing.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self.samples: list[dict[str, Any]] = []
        self._last_at: float | None = None

    def _get(self, name: str, factory, kind: str, help_text: str, **kwargs) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            if not name:
                raise ValueError("instrument name must be non-empty")
            instrument = factory(name, help_text, **kwargs)
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"instrument {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str, help_text: str = "") -> CounterInstrument:
        return self._get(name, CounterInstrument, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> GaugeInstrument:
        return self._get(name, GaugeInstrument, "gauge", help_text)

    def histogram(self, name: str, help_text: str = "", **kwargs) -> HistogramInstrument:
        return self._get(name, HistogramInstrument, "histogram", help_text, **kwargs)

    @property
    def instruments(self) -> tuple[_Instrument, ...]:
        """Registered instruments, in registration order."""
        return tuple(self._instruments.values())

    @property
    def last_sample_at(self) -> float | None:
        """Timestamp of the most recent sample (``None`` before any)."""
        return self._last_at

    def sample(self, at: float) -> int:
        """Record one sample per instrument at time ``at``; returns count.

        Histogram windows close at each call, so the next sample's
        ``window_*`` fields cover exactly the observations in between.
        """
        at = float(at)
        if self._last_at is not None and at < self._last_at:
            raise ValueError(
                f"sample times must be non-decreasing ({at} after {self._last_at})"
            )
        self._last_at = at
        for instrument in self._instruments.values():
            self.samples.append(instrument.sample_record(at))
        return len(self._instruments)

    def series(self, name: str) -> list[dict[str, Any]]:
        """All recorded samples of one instrument, in time order."""
        return [record for record in self.samples if record["name"] == name]

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Prometheus text snapshot of the final instrument states."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def jsonl(self) -> str:
        """The whole sample stream, one schema-tagged JSON object per line."""
        return "".join(
            json.dumps({"schema": METRICS_SCHEMA, **record}, sort_keys=True) + "\n"
            for record in self.samples
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.jsonl())

    def write_prometheus(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.prometheus_text())

    def __repr__(self) -> str:
        return (
            f"TimeSeriesRegistry({len(self._instruments)} instruments, "
            f"{len(self.samples)} samples)"
        )


# ----------------------------------------------------------------------
# Schema validation (the metrics analogue of validate_trace_events)
# ----------------------------------------------------------------------
def _problem(problems: list[str], index: int, message: str) -> None:
    problems.append(f"sample[{index}]: {message}")


def validate_metrics_payload(payload: Any) -> list[str]:
    """Check an exported metrics stream against the sample schema.

    Accepts either a list of sample records (parsed JSONL lines) or a
    ``{"samples": [...]}`` container.  Returns human-readable problems
    (empty when valid).  Per record: schema tag (when present), a
    non-negative numeric ``t``, a non-empty ``name``, a known ``type``,
    a finite ``value`` for counters/gauges, and ``count``/``sum``/
    ``quantiles`` for histograms.  Across the stream: timestamps are
    non-decreasing and every counter series is monotone — the two
    invariants the virtual-clock sampler guarantees by construction.
    """
    problems: list[str] = []
    if isinstance(payload, dict):
        samples = payload.get("samples")
        if not isinstance(samples, list):
            return ["metrics payload has no 'samples' array"]
    elif isinstance(payload, list):
        samples = payload
    else:
        return ["metrics payload is neither a list nor a {'samples': ...} object"]

    last_t: float | None = None
    counter_totals: dict[str, float] = {}
    declared_types: dict[str, str] = {}
    for i, record in enumerate(samples):
        if not isinstance(record, dict):
            _problem(problems, i, "not an object")
            continue
        schema = record.get("schema")
        if schema is not None and schema != METRICS_SCHEMA:
            _problem(problems, i, f"unknown schema tag {schema!r}")
        name = record.get("name")
        if not isinstance(name, str) or not name:
            _problem(problems, i, "missing or empty 'name'")
            continue
        t = record.get("t")
        if not _finite_number(t) or t < 0:
            _problem(problems, i, "missing non-negative numeric 't'")
        else:
            if last_t is not None and t < last_t:
                _problem(problems, i, f"timestamp {t} decreases (was {last_t})")
            last_t = float(t)
        kind = record.get("type")
        if kind not in INSTRUMENT_TYPES:
            _problem(problems, i, f"unknown instrument type {kind!r}")
            continue
        previous_kind = declared_types.setdefault(name, kind)
        if previous_kind != kind:
            _problem(
                problems, i, f"{name!r} changes type {previous_kind} -> {kind}"
            )
            continue
        if kind in ("counter", "gauge"):
            value = record.get("value")
            if not _finite_number(value):
                _problem(problems, i, f"{kind} missing finite numeric 'value'")
            elif kind == "counter":
                previous = counter_totals.get(name)
                if previous is not None and value < previous:
                    _problem(
                        problems,
                        i,
                        f"counter {name!r} decreases {previous} -> {value}",
                    )
                counter_totals[name] = float(value)
        else:  # histogram
            count = record.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                _problem(problems, i, "histogram missing integer 'count' >= 0")
            if not _finite_number(record.get("sum")):
                _problem(problems, i, "histogram missing finite numeric 'sum'")
            quantiles = record.get("quantiles")
            if not isinstance(quantiles, dict) or not quantiles:
                _problem(problems, i, "histogram missing 'quantiles' object")
            else:
                for key, value in quantiles.items():
                    if not _finite_number(value):
                        _problem(
                            problems, i, f"quantile {key!r} is not a finite number"
                        )
    return problems


def parse_metrics_jsonl(lines: "Iterable[str]") -> list[dict[str, Any]]:
    """Parse JSONL text lines back into sample records (blank-safe)."""
    return [json.loads(line) for line in lines if line.strip()]
