"""Simulator & schedule timeline export in the Chrome trace-event format.

The fluid simulator already records a complete execution history — per
clone :class:`~repro.sim.events.CloneTrace` records, piecewise-constant
:class:`~repro.sim.events.RateInterval` resource rates, and (under a
fault plan) injection metadata.  This module converts those histories
into the same trace format :mod:`repro.obs.export` produces for spans,
so a *simulated* execution opens in Perfetto next to the span trace of
the run that scheduled it:

* one thread lane per **site**, holding a ``ph:"X"`` event per executed
  clone (``operator#clone``), laid out on the absolute run clock (phase
  ``k`` starts where phase ``k-1``'s slowest site finished — the global
  barrier of TREESCHEDULE);
* a **phases** lane whose per-phase events tile the full timeline: their
  durations sum *exactly* to the simulated response time, which is the
  invariant the test-suite pins;
* ``ph:"C"`` **counter tracks** sampling each site's per-resource
  utilization at every rate-interval boundary;
* ``ph:"i"`` **instant events** marking fault injections (slowdown onset,
  straggler releases, the failure and recovery instants) when the
  simulation ran under a :class:`~repro.sim.faults.FaultPlan`.

An *analytic* :class:`~repro.engine.result.ScheduleResult` has no event
history — only per-shelf/per-site Equation (2) times — but
:func:`schedule_result_events` renders those as a parallel process lane
so the promise and the simulated reality can be diffed visually.

Imports are type-only: the exporter reads plain attributes, so it works
on any objects with the simulator's shape and :mod:`repro.obs` stays
import-light (core and sim modules import it at module load).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.export import (
    counter_event,
    duration_event,
    instant_event,
    process_name_event,
    thread_name_event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.result import ScheduleResult
    from repro.sim.faults import FaultPlan
    from repro.sim.simulator import SimulationResult

__all__ = ["simulation_events", "schedule_result_events", "fleet_events"]

#: Lane 0 of a timeline process is the phase barrier lane; site ``j``
#: occupies lane ``j + 1``.
PHASE_LANE = 0


def _site_lane(site_index: int) -> int:
    return site_index + 1


def _fault_instants(
    plan: "FaultPlan",
    phase_index: int,
    site_index: int,
    phase_start: float,
    pid: int,
) -> list[dict[str, Any]]:
    """Instant events for every fault the plan injects at one site."""
    faults = plan.for_site(phase_index, site_index)
    if faults is None or faults.is_empty:
        return []
    tid = _site_lane(site_index)
    events: list[dict[str, Any]] = []
    if faults.slowdown is not None:
        events.append(
            instant_event(
                "slowdown",
                at=phase_start,
                pid=pid,
                tid=tid,
                args={"factor": faults.slowdown},
            )
        )
    for label, clone_fault in sorted(faults.clones.items()):
        delay = getattr(clone_fault, "straggler_delay", 0.0)
        if delay:
            events.append(
                instant_event(
                    f"straggler {label}",
                    at=phase_start + delay,
                    pid=pid,
                    tid=tid,
                    args={"delay": delay},
                )
            )
        multipliers = getattr(clone_fault, "work_multipliers", None)
        if multipliers is not None:
            events.append(
                instant_event(
                    f"skew {label}",
                    at=phase_start,
                    pid=pid,
                    tid=tid,
                    args={"multipliers": list(multipliers)},
                )
            )
    if faults.fail_at is not None:
        events.append(
            instant_event(
                "site failure",
                at=phase_start + faults.fail_at,
                pid=pid,
                tid=tid,
                args={"restart_delay": faults.restart_delay},
            )
        )
    return events


def simulation_events(
    sim: "SimulationResult",
    *,
    plan: "FaultPlan | None" = None,
    pid: int = 1,
    process_name: str = "simulator",
) -> list[dict[str, Any]]:
    """Convert one simulated execution into trace events.

    Invariants (pinned by the test-suite):

    * the phase-lane durations sum exactly to ``sim.response_time``;
    * no clone or counter event extends past the simulated makespan
      (clone finishes are bounded by their phase's makespan, phases are
      tiled end to end).
    """
    events: list[dict[str, Any]] = [process_name_event(pid, process_name)]
    events.append(thread_name_event(pid, PHASE_LANE, "phases"))
    named_sites: set[int] = set()
    phase_start = 0.0
    for k, phase in enumerate(sim.phases):
        events.append(
            duration_event(
                f"phase {k}",
                start=phase_start,
                seconds=phase.makespan,
                pid=pid,
                tid=PHASE_LANE,
                cat="phase",
                args={
                    "analytic_makespan": phase.analytic_makespan,
                    "sites": len(phase.sites),
                },
            )
        )
        for site in phase.sites:
            tid = _site_lane(site.site_index)
            if site.site_index not in named_sites:
                named_sites.add(site.site_index)
                events.append(
                    thread_name_event(pid, tid, f"site {site.site_index}")
                )
            for trace in site.traces:
                events.append(
                    duration_event(
                        f"{trace.operator}#{trace.clone_index}",
                        start=phase_start + trace.start,
                        seconds=trace.finish - trace.start,
                        pid=pid,
                        tid=tid,
                        cat="clone",
                        args={
                            "nominal_t_seq": trace.nominal_t_seq,
                            "stretch": trace.stretch,
                        },
                    )
                )
            counter_name = f"site {site.site_index} utilization"
            for interval in site.intervals:
                events.append(
                    counter_event(
                        counter_name,
                        at=phase_start + interval.start,
                        pid=pid,
                        values={
                            f"r{i}": rate
                            for i, rate in enumerate(interval.resource_rates)
                        },
                    )
                )
            if site.intervals:
                last = site.intervals[-1]
                events.append(
                    counter_event(
                        counter_name,
                        at=phase_start + last.end,
                        pid=pid,
                        values={
                            f"r{i}": 0.0
                            for i in range(len(last.resource_rates))
                        },
                    )
                )
            if plan is not None:
                events.extend(
                    _fault_instants(plan, k, site.site_index, phase_start, pid)
                )
        phase_start += phase.makespan
    return events


def fleet_events(
    residencies: "list[tuple[str, int, float, float, dict[str, Any]]]",
    tracks: "dict[str, list[tuple[float, dict[str, float]]]]",
    instants: "list[tuple[str, float, dict[str, Any]]]" = (),
    *,
    pid: int = 3,
    process_name: str = "fleet",
) -> list[dict[str, Any]]:
    """Render a serve run's fleet view: site lanes + counter tracks.

    Takes plain data so the serve layer stays the only importer of serve
    types (``obs`` must not import ``serve``):

    ``residencies``
        ``(query, site_index, start, seconds, args)`` intervals — one
        per (query, host site), drawn as ``ph:"X"`` events on the site's
        lane (site ``j`` is lane ``j + 1``, matching the simulator
        timeline convention).
    ``tracks``
        Counter-track samples, ``name -> [(at, values), ...]`` — each
        becomes one stacked ``ph:"C"`` track (queue depth, utilization,
        governor pressure in the serve exporter).
    ``instants``
        ``(name, at, args)`` point happenings (SLO breaches), emitted as
        process-scoped ``ph:"i"`` events.
    """
    events: list[dict[str, Any]] = [process_name_event(pid, process_name)]
    named_sites: set[int] = set()
    for query, site_index, start, seconds, args in residencies:
        tid = _site_lane(site_index)
        if site_index not in named_sites:
            named_sites.add(site_index)
            events.append(thread_name_event(pid, tid, f"site {site_index}"))
        events.append(
            duration_event(
                query,
                start=start,
                seconds=seconds,
                pid=pid,
                tid=tid,
                cat="resident",
                args=dict(args) if args else None,
            )
        )
    for track_name, samples in tracks.items():
        for at, values in samples:
            events.append(
                counter_event(track_name, at=at, pid=pid, values=values, cat="serve")
            )
    for name, at, args in instants:
        events.append(
            instant_event(
                name,
                at=at,
                pid=pid,
                tid=PHASE_LANE,
                cat="slo",
                scope="p",
                args=dict(args) if args else None,
            )
        )
    return events


def schedule_result_events(
    result: "ScheduleResult",
    *,
    pid: int = 2,
    process_name: str = "analytic schedule",
) -> list[dict[str, Any]]:
    """Render an analytic result's per-shelf/per-site times as a timeline.

    Every site lane shows one event per shelf spanning the site's
    Equation (2) time ``t_site``; the phases lane tiles the Equation (3)
    makespans, so the process's total extent is the analytic response
    time.  Bound-only results (no schedule) produce only the process
    metadata.
    """
    events: list[dict[str, Any]] = [process_name_event(pid, process_name)]
    events.append(thread_name_event(pid, PHASE_LANE, "phases"))
    named_sites: set[int] = set()
    shelf_start = 0.0
    for k, shelf in enumerate(result.timelines):
        events.append(
            duration_event(
                f"shelf {k} [{shelf.label}]",
                start=shelf_start,
                seconds=shelf.makespan,
                pid=pid,
                tid=PHASE_LANE,
                cat="phase",
                args={"bins_opened": shelf.bins_opened},
            )
        )
        for site in shelf.sites:
            if site.clones == 0:
                continue
            tid = _site_lane(site.site_index)
            if site.site_index not in named_sites:
                named_sites.add(site.site_index)
                events.append(
                    thread_name_event(pid, tid, f"site {site.site_index}")
                )
            events.append(
                duration_event(
                    f"{site.clones} clones",
                    start=shelf_start,
                    seconds=site.t_site,
                    pid=pid,
                    tid=tid,
                    cat="site",
                    args={
                        "t_seq_max": site.t_seq_max,
                        "load": list(site.load),
                    },
                )
            )
        shelf_start += shelf.makespan
    return events
