"""Observability: hierarchical span tracing, trace export, run manifests.

The subsystem has four pieces (see DESIGN.md §2.5 for the span
vocabulary and the trace-format mapping):

:mod:`repro.obs.tracer`
    :class:`Tracer` / :class:`Span` — contextvar-parented, monotonic-
    clock span trees with a strict disabled-is-a-no-op contract, plus
    the ambient-tracer hooks (:func:`current_tracer` / :func:`use_tracer`)
    the rest of the stack consults, and the relative-offset span
    serialization behind cross-process stitching.
:mod:`repro.obs.export`
    Chrome trace-event / Perfetto JSON export of span forests, and the
    :func:`validate_trace_events` schema check.
:mod:`repro.obs.timeline`
    Simulated-execution, analytic-schedule, and serve-fleet timelines
    rendered into the same trace format (site lanes, utilization
    counters, fault/SLO instants).
:mod:`repro.obs.metrics_stream`
    Zero-dependency time-series instruments (counter/gauge/log-bucket
    histogram) with Prometheus-text and JSONL exposition and the
    :func:`validate_metrics_payload` schema check.
:mod:`repro.obs.session`
    :class:`TraceSession` — the CLI bundle writing ``trace.json``,
    ``events.jsonl`` and a :class:`RunManifest` per run.

Import-weight contract: ``import repro.obs`` must stay dependency-light
— the scheduling kernels import it at module load.  Only the stdlib and
:mod:`repro.store` (itself stdlib-only) are reachable from here;
engine/sim/core types appear solely behind ``TYPE_CHECKING``.
"""

from repro.obs.export import (
    KNOWN_INSTANT_NAMES,
    KNOWN_SPAN_NAMES,
    TRACE_EVENT_PHASES,
    span_events,
    trace_payload,
    tracer_events,
    unknown_instant_names,
    unknown_span_names,
    validate_trace_events,
    write_trace,
)
from repro.obs.metrics_stream import (
    METRICS_SCHEMA,
    LogBucketSketch,
    TimeSeriesRegistry,
    validate_metrics_payload,
)
from repro.obs.session import (
    EVENTS_FILE,
    MANIFEST_FILE,
    MANIFEST_SCHEMA,
    TRACE_FILE,
    RunLog,
    RunManifest,
    TraceSession,
    collect_point_keys,
    git_describe,
)
from repro.obs.timeline import (
    fleet_events,
    schedule_result_events,
    simulation_events,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    span_from_dict,
    span_to_dict,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "span_to_dict",
    "span_from_dict",
    "TRACE_EVENT_PHASES",
    "KNOWN_SPAN_NAMES",
    "KNOWN_INSTANT_NAMES",
    "unknown_span_names",
    "unknown_instant_names",
    "span_events",
    "tracer_events",
    "trace_payload",
    "write_trace",
    "validate_trace_events",
    "simulation_events",
    "schedule_result_events",
    "fleet_events",
    "METRICS_SCHEMA",
    "LogBucketSketch",
    "TimeSeriesRegistry",
    "validate_metrics_payload",
    "TraceSession",
    "RunManifest",
    "RunLog",
    "collect_point_keys",
    "git_describe",
    "MANIFEST_SCHEMA",
    "TRACE_FILE",
    "EVENTS_FILE",
    "MANIFEST_FILE",
]
