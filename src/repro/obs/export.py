"""Chrome trace-event / Perfetto JSON export of span trees.

The `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
is the JSON object format both ``chrome://tracing`` and
`ui.perfetto.dev <https://ui.perfetto.dev>`_ load directly:
``{"traceEvents": [...]}`` where each event carries a phase (``ph``),
a microsecond timestamp (``ts``), and process/thread lane ids
(``pid``/``tid``).  This module maps repro artifacts onto it:

* span trees → ``ph:"X"`` complete (duration) events, one per span,
  nested by time inclusion within a lane;
* lane naming → ``ph:"M"`` metadata events (``process_name`` /
  ``thread_name``), so Perfetto shows "scheduler", "site 3", "worker 2"
  instead of raw integers;
* utilization tracks → ``ph:"C"`` counter events (used by the simulator
  timeline exporter in :mod:`repro.obs.timeline`);
* point happenings (fault injections) → ``ph:"i"`` instant events.

Everything here is plain data in/plain data out; :func:`write_trace`
does the one file write.  :func:`validate_trace_events` is the schema
check the test-suite and the CI trace-roundtrip job run against every
emitted ``trace.json``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span, Tracer

__all__ = [
    "TRACE_EVENT_PHASES",
    "KNOWN_SPAN_NAMES",
    "KNOWN_INSTANT_NAMES",
    "unknown_span_names",
    "unknown_instant_names",
    "duration_event",
    "instant_event",
    "counter_event",
    "process_name_event",
    "thread_name_event",
    "span_events",
    "tracer_events",
    "trace_payload",
    "write_trace",
    "validate_trace_events",
]

#: Event phases this exporter emits (a subset of the format).
TRACE_EVENT_PHASES = ("X", "M", "C", "i")

#: The span-name vocabulary (DESIGN.md §2.5 table).  Span names are
#: recorded as plain strings at the emitting sites, so — exactly like the
#: metric vocabulary in :mod:`repro.engine.metrics` — a typo silently
#: creates a lane nobody looks for; :func:`unknown_span_names` is the
#: check validators run against recorded span trees.
KNOWN_SPAN_NAMES = frozenset(
    {
        # engine / kernels
        "schedule",
        "tree_schedule",
        "phase_decomposition",
        "shelf",
        "degree_selection",
        "pack",
        "list_placement",
        "pack_vectors",
        # simulator
        "simulate_phased",
        "simulate_phase",
        # parallel runner
        "sweep",
        "point",
        # incremental repair
        "reschedule",
        "reschedule_repair",
        # elastic capacity change applied to a serve pool or schedule
        "capacity_change",
        # schedule-aware plan search
        "plan_search",
        "plan_enumerate",
        "plan_screen",
        "plan_score",
        # online scheduler service
        "serve",
        "serve_admit",
        "serve_place",
        "serve_complete",
    }
)

#: The instant-event (``ph:"i"``) name vocabulary: fault injections from
#: the simulator timeline and SLO breaches from the serve telemetry.
#: Per-clone fault instants are parameterized ("straggler q0#2",
#: "skew q1#0"); :func:`unknown_instant_names` matches those by prefix.
KNOWN_INSTANT_NAMES = frozenset(
    {
        "slowdown",
        "site failure",
        "slo_breach",
    }
)

#: Prefixes of parameterized instant names (clone label appended).
_INSTANT_NAME_PREFIXES = ("straggler ", "skew ")


def unknown_instant_names(events: Any) -> set[str]:
    """Instant-event names outside the known vocabulary.

    Accepts an iterable of trace events (or a ``{"traceEvents": ...}``
    payload) and checks every ``ph:"i"`` event's name against
    :data:`KNOWN_INSTANT_NAMES` plus the parameterized fault prefixes —
    the same typo-catching check :func:`unknown_span_names` gives spans.
    """
    if isinstance(events, dict):
        events = events.get("traceEvents", ())
    unknown: set[str] = set()
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "i":
            continue
        name = event.get("name")
        if not isinstance(name, str):
            continue
        if name in KNOWN_INSTANT_NAMES:
            continue
        if name.startswith(_INSTANT_NAME_PREFIXES):
            continue
        unknown.add(name)
    return unknown


def unknown_span_names(spans: Any) -> set[str]:
    """Span names outside :data:`KNOWN_SPAN_NAMES`, recursively.

    Accepts an iterable of span dicts (the relative-offset form of
    :func:`repro.obs.tracer.span_to_dict`, as carried by
    ``ScheduleResult.instrumentation.spans``) and walks their children.
    """
    unknown: set[str] = set()

    def visit(span_dict: Any) -> None:
        if not isinstance(span_dict, dict):
            return
        name = span_dict.get("name")
        if isinstance(name, str) and name not in KNOWN_SPAN_NAMES:
            unknown.add(name)
        for child in span_dict.get("children", ()):
            visit(child)

    for span_dict in spans:
        visit(span_dict)
    return unknown


_MICROS = 1e6


def _us(seconds: float) -> float:
    """Seconds → trace-format microseconds (floats are permitted)."""
    return seconds * _MICROS


def duration_event(
    name: str,
    *,
    start: float,
    seconds: float,
    pid: int,
    tid: int,
    cat: str = "span",
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One ``ph:"X"`` complete event (``start``/``seconds`` in seconds)."""
    event: dict[str, Any] = {
        "name": name,
        "ph": "X",
        "cat": cat,
        "ts": _us(start),
        "dur": _us(max(seconds, 0.0)),
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def instant_event(
    name: str,
    *,
    at: float,
    pid: int,
    tid: int,
    cat: str = "fault",
    scope: str = "t",
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One ``ph:"i"`` instant event (scope ``t``hread/``p``rocess/``g``lobal)."""
    event: dict[str, Any] = {
        "name": name,
        "ph": "i",
        "cat": cat,
        "ts": _us(at),
        "pid": pid,
        "tid": tid,
        "s": scope,
    }
    if args:
        event["args"] = args
    return event


def counter_event(
    name: str,
    *,
    at: float,
    pid: int,
    values: dict[str, float],
    cat: str = "utilization",
) -> dict[str, Any]:
    """One ``ph:"C"`` counter sample (one stacked track per dict key)."""
    return {
        "name": name,
        "ph": "C",
        "cat": cat,
        "ts": _us(at),
        "pid": pid,
        "tid": 0,
        "args": dict(values),
    }


def process_name_event(pid: int, name: str) -> dict[str, Any]:
    """``ph:"M"`` metadata naming process lane ``pid``."""
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def thread_name_event(pid: int, tid: int, name: str) -> dict[str, Any]:
    """``ph:"M"`` metadata naming thread lane ``(pid, tid)``."""
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def span_events(
    span: "Span",
    *,
    pid: int,
    tid: int,
    base: float,
    cat: str = "span",
) -> list[dict[str, Any]]:
    """Flatten one span tree into ``ph:"X"`` events on lane ``(pid, tid)``.

    ``base`` is the clock value mapped to trace time zero (normally the
    earliest root span start of the run).  Children nest by time
    inclusion, which is exactly how the trace viewers reconstruct the
    hierarchy within a lane.
    """
    events = [
        duration_event(
            span.name,
            start=span.start - base,
            seconds=span.seconds,
            pid=pid,
            tid=tid,
            cat=cat,
            args=dict(span.attributes) if span.attributes else None,
        )
    ]
    for child in span.children:
        events.extend(span_events(child, pid=pid, tid=tid, base=base, cat=cat))
    return events


def tracer_events(
    tracer: "Tracer",
    *,
    pid: int = 0,
    process_name: str = "repro",
    thread_name: str = "run",
) -> list[dict[str, Any]]:
    """Export every root span of ``tracer`` onto one named lane.

    Roots share the process's monotonic clock, so they are laid out at
    their true relative times; trace time zero is the earliest root
    start.
    """
    events = [
        process_name_event(pid, process_name),
        thread_name_event(pid, 0, thread_name),
    ]
    if not tracer.roots:
        return events
    base = min(span.start for span in tracer.roots)
    for root in tracer.roots:
        events.extend(span_events(root, pid=pid, tid=0, base=base))
    return events


def trace_payload(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Wrap events in the JSON-object trace container Perfetto loads."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_trace(path: str, events: list[dict[str, Any]]) -> None:
    """Write ``events`` to ``path`` as a loadable ``trace.json``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_payload(events), fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def _problem(problems: list[str], index: int, message: str) -> None:
    problems.append(f"event[{index}]: {message}")


def validate_trace_events(payload: Any) -> list[str]:
    """Check ``payload`` against the Chrome trace-event object format.

    Returns a list of human-readable problems (empty when the trace is
    valid).  Checks the container shape and, per event: required keys,
    known phases, numeric non-negative timestamps, integer lane ids,
    ``dur`` on complete events, ``args`` dicts where the phase requires
    them, and the instant-event scope flag.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["trace payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace payload has no 'traceEvents' array"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            _problem(problems, i, "not an object")
            continue
        ph = event.get("ph")
        if ph not in TRACE_EVENT_PHASES:
            _problem(problems, i, f"unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            _problem(problems, i, "missing or empty 'name'")
        for lane in ("pid", "tid"):
            if not isinstance(event.get(lane), int):
                _problem(problems, i, f"missing integer {lane!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                _problem(problems, i, "missing non-negative numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _problem(problems, i, "complete event missing 'dur' >= 0")
        if ph in ("M", "C"):
            if not isinstance(event.get("args"), dict):
                _problem(problems, i, f"{ph!r} event missing 'args' object")
        if ph == "C":
            for key, value in event.get("args", {}).items():
                if not isinstance(value, (int, float)):
                    _problem(
                        problems, i, f"counter track {key!r} is not numeric"
                    )
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            _problem(problems, i, "instant event scope 's' not in t/p/g")
        if "args" in event and not isinstance(event["args"], dict):
            _problem(problems, i, "'args' is not an object")
    return problems
