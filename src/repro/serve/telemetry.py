"""Live service telemetry: virtual-time sampling, SLO monitor, fleet export.

:class:`ServiceTelemetry` is the observation plane of the online
scheduler service — strictly *read-only* over the service's live
objects, which is what keeps the load-bearing invariant cheap to state:
a run's stdout and every virtual-time result are byte-identical with
telemetry enabled or disabled, because the sampler only ever reads
admission/pool/governor/executor state and writes to its own
:class:`~repro.obs.metrics_stream.TimeSeriesRegistry`.

Three cooperating pieces:

**The sampler** (:meth:`ServiceTelemetry.run`) is one extra coroutine on
the service's :class:`~repro.serve.clock.VirtualTimeEventLoop`, waking
every ``interval`` *virtual* seconds to snapshot queue depths
(latency/batch/parked), pool occupancy and cumulative utilization,
governor pressure and last chosen degree, executor backlog, and the
mirrored service counters.  Sample timestamps are virtual seconds, so
the exported stream is a deterministic function of the
:class:`~repro.serve.service.ServeConfig` — byte-stable at any
``--workers`` count.  (One caveat the service documents: with a sampler
timer always pending, a genuine service deadlock no longer trips the
virtual loop's deadlock guard; telemetry is opt-in precisely so
correctness tests run without it.)

**The SLO monitor** scores every completion against its class's
:class:`SLOTarget`: rolling attainment over the last ``window``
completions, cumulative attainment, and the error-budget *burn rate*
``(1 - attainment) / (1 - objective)`` — burn 1.0 means the class is
spending its budget exactly as provisioned, above 1.0 it will exhaust
the budget early.  Each miss lands as one breach instant (a ``ph:"i"``
trace event in the fleet timeline) and bumps the service recorder's
``slo_breaches`` counter.

**The fleet timeline** accumulates per-site residency intervals (which
query occupied which site, when) plus the sampled counter tracks, and
:meth:`ServiceTelemetry.timeline_events` renders them through
:func:`repro.obs.timeline.fleet_events` for merging into a
:class:`~repro.obs.session.TraceSession`'s ``trace.json``.

Reconciliation contract: after :meth:`ServiceTelemetry.finish`, the
final ``serve_qps`` and ``serve_pool_utilization`` samples equal the
``qps`` and ``site_utilization`` of
:meth:`~repro.serve.service.ServiceReport.summary` exactly (same
rounding), and each class's final latency-sketch p95 is within one
log-bucket growth factor above the summary's exact nearest-rank p95.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.exceptions import ConfigurationError
from repro.engine.metrics import (
    COUNTER_QUERIES_ADMITTED,
    COUNTER_QUERIES_COMPLETED,
    COUNTER_QUERIES_DEFERRED,
    COUNTER_QUERIES_OFFERED,
    COUNTER_QUERIES_SHED,
    COUNTER_SLO_BREACHES,
    COUNTER_TELEMETRY_SAMPLES,
    TIMER_TELEMETRY,
)
from repro.obs.metrics_stream import TimeSeriesRegistry
from repro.obs.timeline import fleet_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.metrics import MetricsRecorder
    from repro.serve.admission import AdmissionController
    from repro.serve.executor import FluidExecutor
    from repro.serve.governor import DegreeGovernor
    from repro.serve.pool import SitePool

__all__ = ["SLOTarget", "TelemetryConfig", "ServiceTelemetry", "INSTANT_SLO_BREACH"]

#: Instant-event name of an SLO miss in the fleet timeline.
INSTANT_SLO_BREACH = "slo_breach"

#: The service's SLO classes (:class:`repro.serve.workload.SLOClass`
#: values; plain strings here so this module stays hook-shaped).
SLO_CLASSES = ("latency", "batch")


def _round(x: float) -> float:
    # Same rounding as the service summary, so final samples reconcile
    # byte-exactly.
    return round(x, 9)


@dataclass(frozen=True)
class SLOTarget:
    """One class's latency objective.

    Attributes
    ----------
    target:
        End-to-end latency bound in virtual seconds; a completion above
        it is a breach.
    objective:
        Required attainment fraction in ``(0, 1)``; the error budget is
        ``1 - objective`` and burn rate is miss-rate over budget.
    """

    target: float
    objective: float = 0.9

    def __post_init__(self) -> None:
        if not self.target > 0.0:
            raise ConfigurationError(
                f"SLO target must be > 0 seconds, got {self.target}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the telemetry plane.

    Attributes
    ----------
    interval:
        Virtual seconds between samples.
    window:
        Completions per class in the rolling SLO attainment window.
    latency_slo, batch_slo:
        Per-class latency targets; defaults are loose enough that a
        healthy default-config run breaches rarely.
    """

    interval: float = 5.0
    window: int = 64
    latency_slo: SLOTarget = SLOTarget(target=30.0, objective=0.9)
    batch_slo: SLOTarget = SLOTarget(target=120.0, objective=0.8)

    def __post_init__(self) -> None:
        if not self.interval > 0.0 or self.interval != self.interval:
            raise ConfigurationError(
                f"telemetry interval must be > 0, got {self.interval}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"telemetry window must be >= 1, got {self.window}"
            )

    def targets(self) -> dict[str, SLOTarget]:
        """Per-class targets keyed by SLO class name."""
        return {"latency": self.latency_slo, "batch": self.batch_slo}


class ServiceTelemetry:
    """Read-only observer of one :class:`SchedulerService` run.

    The service calls :meth:`on_placed` / :meth:`on_completed` from its
    placement and completion paths, runs :meth:`run` as a sampler task,
    and calls :meth:`finish` once the report exists.  Everything
    observed lands in :attr:`registry` (instruments + sample stream),
    :attr:`breaches` (SLO misses), and the fleet-timeline accumulators.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        *,
        p: int,
        admission: "AdmissionController",
        pool: "SitePool",
        governor: "DegreeGovernor",
        executor: "FluidExecutor",
        metrics: "MetricsRecorder",
    ) -> None:
        self.config = config
        self.p = p
        self.admission = admission
        self.pool = pool
        self.governor = governor
        self.executor = executor
        self.metrics = metrics
        self.registry = TimeSeriesRegistry()
        self._targets = config.targets()

        # Fleet timeline accumulators.
        self._open: dict[str, tuple[float, tuple[int, ...], dict[str, Any]]] = {}
        self._residencies: list[tuple[str, int, float, float, dict[str, Any]]] = []
        self._instants: list[tuple[str, float, dict[str, Any]]] = []
        self._tracks: dict[str, list[tuple[float, dict[str, float]]]] = {
            "queue depth": [],
            "pool utilization": [],
            "pool residents": [],
            "governor": [],
        }

        # SLO monitor state.
        self.breaches: list[dict[str, Any]] = []
        self._slo_window: dict[str, deque[bool]] = {
            cls: deque(maxlen=config.window) for cls in SLO_CLASSES
        }
        self._slo_total: dict[str, int] = dict.fromkeys(SLO_CLASSES, 0)
        self._slo_hits: dict[str, int] = dict.fromkeys(SLO_CLASSES, 0)
        self._last_completion_at: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

        # Register every instrument up front: registration order is the
        # per-sample record order, so it must not depend on which events
        # happen to fire first.
        reg = self.registry
        self._g_queue_latency = reg.gauge(
            "serve_queue_latency_depth", "runnable latency-class jobs queued"
        )
        self._g_queue_batch = reg.gauge(
            "serve_queue_batch_depth", "runnable batch-class jobs queued"
        )
        self._g_queue_parked = reg.gauge(
            "serve_queue_parked_depth", "batch jobs parked past high water"
        )
        self._g_occupied = reg.gauge(
            "serve_pool_occupied_sites", "sites hosting at least one query"
        )
        self._g_residents = reg.gauge(
            "serve_pool_resident_queries", "queries resident in the pool"
        )
        self._g_utilization = reg.gauge(
            "serve_pool_utilization",
            "cumulative busy-site-seconds over p * elapsed",
        )
        self._g_pressure = reg.gauge(
            "serve_pressure", "queued + running at the last placement"
        )
        self._g_degree = reg.gauge(
            "serve_degree_last", "clone degree of the last placement"
        )
        self._g_running = reg.gauge(
            "serve_running", "queries executing in the fluid race"
        )
        self._g_backlog = reg.gauge(
            "serve_backlog_seconds", "remaining stand-alone work of the running set"
        )
        self._g_qps = reg.gauge(
            "serve_qps", "completed queries per virtual second"
        )
        self._g_advances = reg.gauge(
            "serve_clock_advances", "virtual-clock jumps taken by the event loop"
        )
        self._g_attainment = {
            cls: reg.gauge(
                f"serve_slo_attainment_{cls}",
                f"rolling fraction of {cls}-class completions inside target",
            )
            for cls in SLO_CLASSES
        }
        self._g_burn = {
            cls: reg.gauge(
                f"serve_slo_burn_rate_{cls}",
                f"{cls}-class error-budget burn rate (miss rate / budget)",
            )
            for cls in SLO_CLASSES
        }
        self._c_mirrors = {
            COUNTER_QUERIES_OFFERED: reg.counter(
                "serve_offered_total", "queries submitted to the service"
            ),
            COUNTER_QUERIES_ADMITTED: reg.counter(
                "serve_admitted_total", "arrivals enqueued for placement"
            ),
            COUNTER_QUERIES_DEFERRED: reg.counter(
                "serve_deferred_total", "batch arrivals parked past high water"
            ),
            COUNTER_QUERIES_SHED: reg.counter(
                "serve_shed_total", "arrivals rejected at the hard cap"
            ),
            COUNTER_QUERIES_COMPLETED: reg.counter(
                "serve_completed_total", "queries run to completion"
            ),
            COUNTER_SLO_BREACHES: reg.counter(
                "serve_slo_breaches_total", "completions that missed their SLO"
            ),
        }
        self._h_latency = {
            cls: reg.histogram(
                f"serve_latency_seconds_{cls}",
                f"end-to-end latency of {cls}-class completions",
            )
            for cls in SLO_CLASSES
        }
        self._h_gap = reg.histogram(
            "serve_completion_gap_seconds", "virtual time between completions"
        )

    # ------------------------------------------------------------------
    # Service hooks (called from the placement / completion paths)
    # ------------------------------------------------------------------
    def on_placed(
        self,
        name: str,
        slo: str,
        hosts: tuple[int, ...],
        at: float,
        degree: int,
    ) -> None:
        """One query landed on the pool: open its residency lanes."""
        self._open[name] = (at, tuple(hosts), {"slo": slo, "degree": degree})

    def on_completed(self, name: str, slo: str, latency: float, at: float) -> None:
        """One query finished: close lanes, score the SLO, sketch latency."""
        opened = self._open.pop(name, None)
        if opened is not None:
            start, hosts, args = opened
            lane_args = {**args, "latency": _round(latency)}
            for site in hosts:
                self._residencies.append((name, site, start, at - start, lane_args))
        histogram = self._h_latency.get(slo)
        if histogram is not None:
            histogram.observe(latency)
        if self._last_completion_at is not None:
            self._h_gap.observe(at - self._last_completion_at)
        self._last_completion_at = at
        target = self._targets.get(slo)
        if target is None:
            return
        ok = latency <= target.target
        self._slo_window[slo].append(ok)
        self._slo_total[slo] += 1
        if ok:
            self._slo_hits[slo] += 1
        else:
            breach = {
                "job": name,
                "slo": slo,
                "latency": _round(latency),
                "target": target.target,
                "at": _round(at),
            }
            self.breaches.append(breach)
            self._instants.append(
                (INSTANT_SLO_BREACH, at, {k: v for k, v in breach.items() if k != "at"})
            )
            self.metrics.count(COUNTER_SLO_BREACHES)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def attainment(self, slo: str) -> float:
        """Rolling attainment over the last ``window`` completions (1.0 empty)."""
        window = self._slo_window[slo]
        if not window:
            return 1.0
        return sum(window) / len(window)

    def burn_rate(self, slo: str) -> float:
        """Rolling error-budget burn: miss rate over ``1 - objective``."""
        return (1.0 - self.attainment(slo)) / (1.0 - self._targets[slo].objective)

    def sample(
        self, now: float, *, qps: float | None = None, utilization: float | None = None
    ) -> None:
        """Snapshot every instrument at virtual time ``now``.

        ``qps`` / ``utilization`` override the derived gauges — the
        :meth:`finish` path passes the summary's rounded values so the
        final samples reconcile byte-exactly.
        """
        with self.metrics.timer(TIMER_TELEMETRY):
            self.metrics.count(COUNTER_TELEMETRY_SAMPLES)
            counters = self.metrics.counters
            self._g_queue_latency.set(self.admission.queued_latency)
            self._g_queue_batch.set(self.admission.queued_batch)
            self._g_queue_parked.set(self.admission.parked)
            occupancy = self.pool.utilization()
            self._g_occupied.set(occupancy["occupied_sites"])
            self._g_residents.set(occupancy["resident_queries"])
            if utilization is None:
                utilization = (
                    self.executor.busy_site_seconds / (self.p * now) if now else 0.0
                )
            self._g_utilization.set(utilization)
            self._g_pressure.set(self.governor.last_pressure)
            self._g_degree.set(self.governor.last_degree)
            self._g_running.set(self.executor.running_count)
            self._g_backlog.set(self.executor.backlog_seconds)
            if qps is None:
                completed = counters.get(COUNTER_QUERIES_COMPLETED, 0.0)
                qps = completed / now if now else 0.0
            self._g_qps.set(qps)
            self._g_advances.set(getattr(self._loop, "advances", 0))
            for cls in SLO_CLASSES:
                self._g_attainment[cls].set(self.attainment(cls))
                self._g_burn[cls].set(self.burn_rate(cls))
            for counter_name, mirror in self._c_mirrors.items():
                mirror.set_total(counters.get(counter_name, 0.0))
            self._tracks["queue depth"].append(
                (
                    now,
                    {
                        "latency": float(self.admission.queued_latency),
                        "batch": float(self.admission.queued_batch),
                        "parked": float(self.admission.parked),
                    },
                )
            )
            self._tracks["pool utilization"].append(
                (now, {"utilization": utilization})
            )
            self._tracks["pool residents"].append(
                (
                    now,
                    {
                        "occupied_sites": occupancy["occupied_sites"],
                        "resident_queries": occupancy["resident_queries"],
                    },
                )
            )
            self._tracks["governor"].append(
                (
                    now,
                    {
                        "pressure": float(self.governor.last_pressure),
                        "degree": float(self.governor.last_degree),
                    },
                )
            )
            self.registry.sample(now)

    async def run(self) -> None:
        """Sampler task: one snapshot now, then one per virtual interval.

        Cancelled by the service once the executor drains; cancellation
        between samples is the normal exit.
        """
        self._loop = asyncio.get_running_loop()
        self.sample(self._loop.time())
        while True:
            await asyncio.sleep(self.config.interval)
            self.sample(self._loop.time())

    def finish(self, *, elapsed: float, completed: int) -> None:
        """Final reconciliation sample after the run.

        Closes any residency lane still open (defensive — the executor
        drains before the service returns), then samples once more with
        ``serve_qps`` and ``serve_pool_utilization`` pinned to the
        summary's rounded values.  The sample lands at ``elapsed`` or at
        the last periodic sample time, whichever is later (open-arrival
        generators can wake past ``duration`` after the last completion).
        """
        for name, (start, hosts, args) in sorted(self._open.items()):
            for site in hosts:
                self._residencies.append(
                    (name, site, start, max(elapsed - start, 0.0), {**args})
                )
        self._open.clear()
        qps = _round(completed / elapsed) if elapsed else 0.0
        utilization = (
            _round(self.executor.busy_site_seconds / (self.p * elapsed))
            if elapsed
            else 0.0
        )
        at = max(elapsed, self.registry.last_sample_at or 0.0)
        self.sample(at, qps=qps, utilization=utilization)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def timeline_events(self) -> list[dict[str, Any]]:
        """The fleet timeline: site lanes + counter tracks + breaches."""
        return fleet_events(self._residencies, self._tracks, self._instants)
