"""SLO-aware admission control with a bounded, high-water-marked queue.

The admission controller is the service's front door.  Every submitted
:class:`~repro.serve.workload.QueryJob` receives exactly one decision:

``ADMITTED``
    Enqueued for placement.  Latency-class jobs always go to the front
    partition of the queue (served before any batch job).
``DEFERRED``
    The queue is past its *high-water* mark and the job is batch-class:
    it is parked in a side FIFO and only promoted back into the queue
    once depth drains below the *low-water* mark (hysteresis, so the
    controller does not flap around a single threshold).
``SHED``
    The queue (admitted + deferred) is at its hard cap; the job is
    rejected outright.  In closed-loop mode the client's outcome future
    resolves immediately, so shedding feeds back into the arrival
    process exactly like a real load-shedding tier.

The queue itself is two FIFOs (latency / batch): strict priority between
classes, arrival order within a class — deterministic under the virtual
clock, and exactly the "bounded queue that sheds or defers load past a
high-water mark" of the service spec.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.serve.workload import QueryJob, SLOClass

__all__ = ["AdmissionDecision", "AdmissionConfig", "AdmissionController"]


class AdmissionDecision(str, enum.Enum):
    """Outcome of one admission request."""

    ADMITTED = "admitted"
    DEFERRED = "deferred"
    SHED = "shed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Thresholds of the bounded admission queue.

    Attributes
    ----------
    max_queue:
        Hard cap on jobs the controller holds (admitted + deferred);
        beyond it every arrival is shed.
    high_water:
        Queue depth at which batch arrivals start being deferred.
    low_water:
        Queue depth below which parked batch jobs are promoted back
        (must be < ``high_water`` for hysteresis).
    """

    max_queue: int = 64
    high_water: int = 16
    low_water: int = 8

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {self.max_queue}")
        if not 0 < self.high_water <= self.max_queue:
            raise ConfigurationError(
                f"high_water must be in 1..max_queue, got {self.high_water}"
            )
        if not 0 <= self.low_water < self.high_water:
            raise ConfigurationError(
                f"low_water must be in 0..high_water-1, got {self.low_water}"
            )


@dataclass
class AdmissionController:
    """Bounded two-class queue with defer/shed thresholds.

    Synchronous and event-loop-agnostic: the service wires the
    ``on_available`` callback to an :class:`asyncio.Event` so its
    placement loop can await work without the controller importing
    asyncio.  All state transitions are deterministic functions of the
    submission/pop sequence.
    """

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    on_available: "callable | None" = None

    _latency: deque[QueryJob] = field(default_factory=deque, init=False)
    _batch: deque[QueryJob] = field(default_factory=deque, init=False)
    _deferred: deque[QueryJob] = field(default_factory=deque, init=False)
    #: decision counts per (decision, slo) pair, for the report.
    decisions: dict[tuple[str, str], int] = field(default_factory=dict, init=False)
    #: jobs that were deferred at least once before being queued.
    promoted: int = field(default=0, init=False)
    _draining: bool = field(default=False, init=False)

    @property
    def queued(self) -> int:
        """Jobs currently runnable (admitted, not yet popped)."""
        return len(self._latency) + len(self._batch)

    @property
    def queued_latency(self) -> int:
        """Runnable latency-class jobs (served before any batch job)."""
        return len(self._latency)

    @property
    def queued_batch(self) -> int:
        """Runnable batch-class jobs."""
        return len(self._batch)

    @property
    def parked(self) -> int:
        """Jobs currently deferred (parked past the high-water mark)."""
        return len(self._deferred)

    @property
    def depth(self) -> int:
        """Everything the controller is holding."""
        return self.queued + self.parked

    def _count(self, decision: AdmissionDecision, job: QueryJob) -> None:
        key = (decision.value, job.slo.value)
        self.decisions[key] = self.decisions.get(key, 0) + 1

    def _enqueue(self, job: QueryJob) -> None:
        (self._latency if job.slo is SLOClass.LATENCY else self._batch).append(job)
        if self.on_available is not None:
            self.on_available()

    def submit(self, job: QueryJob) -> AdmissionDecision:
        """Decide one arrival; returns the decision taken."""
        if self.depth >= self.config.max_queue:
            decision = AdmissionDecision.SHED
        elif self.queued >= self.config.high_water and job.slo is SLOClass.BATCH:
            self._deferred.append(job)
            decision = AdmissionDecision.DEFERRED
        else:
            self._enqueue(job)
            decision = AdmissionDecision.ADMITTED
        self._count(decision, job)
        return decision

    def _promote(self) -> None:
        """Move parked batch jobs back once depth drains (hysteresis).

        Once intake has closed, hysteresis no longer buys anything (no
        more load is coming), so parked jobs refill straight up to the
        high-water mark as room frees.
        """
        threshold = (
            self.config.high_water if self._draining else self.config.low_water
        )
        while self._deferred and self.queued < threshold:
            self._enqueue(self._deferred.popleft())
            self.promoted += 1

    def pop(self) -> QueryJob | None:
        """Take the next runnable job: latency first, FIFO within class."""
        if self._latency:
            job = self._latency.popleft()
        elif self._batch:
            job = self._batch.popleft()
        else:
            job = None
        self._promote()
        return job

    def drain_intake(self) -> None:
        """Intake closed (workload finished): start promoting parked jobs.

        Deferral only makes sense while new load may arrive; at drain
        time the parked batch jobs re-enter the queue (up to high-water
        immediately, the rest as :meth:`pop` frees room).
        """
        self._draining = True
        self._promote()
