"""Deterministic virtual-time event loop for the scheduler service.

The online service (:mod:`repro.serve.service`) is ordinary asyncio
code — coroutines, events, ``asyncio.sleep`` — but its clock is
*virtual*: :class:`VirtualTimeEventLoop` overrides
:meth:`asyncio.AbstractEventLoop.time` with a logical clock that jumps
straight to the next scheduled timer whenever no callback is ready.  A
ten-minute simulated run completes in milliseconds of wall-clock time,
never sleeps, and — because nothing ever waits on real I/O or threads —
is bit-deterministic: the interleaving of service tasks is a pure
function of the timer sequence the service itself created.

This is the serve-layer analogue of the fluid simulator's stance in
:mod:`repro.sim`: execution is modelled, not measured, so runs are
reproducible on any machine and in CI.  Timer ties resolve by heap
order, which is itself a deterministic function of the schedule-call
sequence.

A genuine deadlock (every task blocked, no timer pending) would make a
real event loop hang forever on its selector; the virtual loop raises
:class:`~repro.exceptions.ServiceError` instead, so a service bug fails
fast with a stack trace rather than freezing CI.
"""

from __future__ import annotations

import asyncio
from collections.abc import Coroutine
from typing import Any, TypeVar

from repro.exceptions import ServiceError

__all__ = ["VirtualTimeEventLoop", "run_virtual"]

T = TypeVar("T")


class VirtualTimeEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock is logical, not physical.

    ``loop.time()`` starts at 0.0 and only moves when the loop would
    otherwise wait for a timer: instead of selecting with a timeout, the
    clock jumps to the earliest scheduled deadline.  All asyncio timer
    machinery (``asyncio.sleep``, ``call_later``, timeouts) works
    unchanged on top.

    The loop is intended for pure computation + coordination workloads
    (no sockets, no subprocesses, no executors); anything that blocks on
    real I/O without a timer trips the deadlock guard.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0
        #: Clock jumps taken (one per idle-to-timer skip); telemetry
        #: exposes it as the ``serve_clock_advances`` gauge.
        self.advances = 0

    def time(self) -> float:
        """The current virtual time, in seconds since loop creation."""
        return self._virtual_now

    def _run_once(self) -> None:
        # The whole trick: with no ready callback, jump the clock to the
        # next timer deadline so the base implementation computes a zero
        # select() timeout and fires it immediately.  ``_ready`` and
        # ``_scheduled`` are BaseEventLoop internals, stable across every
        # CPython this package supports (3.10+).
        if not self._ready:
            if self._scheduled:
                when = self._scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
                    self.advances += 1
            elif not self._stopping:
                raise ServiceError(
                    "virtual-time deadlock: every task is blocked and no "
                    "timer is pending"
                )
        super()._run_once()


def run_virtual(coro: Coroutine[Any, Any, T]) -> T:
    """Run ``coro`` to completion on a fresh virtual-time loop.

    The loop is created, installed as the thread's current event loop
    for the duration of the run (so ``asyncio.get_event_loop`` inside
    libraries keeps working), and always closed afterwards.  Returns the
    coroutine's result.
    """
    loop = VirtualTimeEventLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        asyncio.set_event_loop(None)
        loop.close()
