"""Degree governor: the intra-/inter-query parallelism trade-off.

The clone degree ``N_i`` a query is scheduled with is the service's one
big lever, per the graph-query scheduling literature cited in PAPERS.md:
a high degree minimizes that query's stand-alone response time (intra-
query parallelism), but each clone occupies a distinct site (constraint
(A)), so high degrees crowd the pool and serialize *other* queries
(inter-query parallelism).  Because the paper's cost model charges
startup and communication overhead per clone, total work ``k · T0(k)``
grows with ``k`` — running many queries at low degree sustains strictly
more throughput than a few at maximum degree.

:class:`DegreeGovernor` picks the degree for the next placement from the
current *pressure* (queued + running queries): each ``pressure_step``
units of pressure halve the degree, floored at ``min_degree``.  When the
pool drains the same formula raises the degree back — no extra state,
no flapping, fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["GovernorPolicy", "GovernorConfig", "DegreeGovernor"]


class GovernorPolicy(str, enum.Enum):
    """Degree selection policy."""

    #: Always schedule at ``max_degree`` (the batch-mode default, and
    #: the baseline the serve bench compares against).
    FIXED = "fixed"
    #: Halve the degree per ``pressure_step`` of load, floor at
    #: ``min_degree``; recover as load drains.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class GovernorConfig:
    """Knobs of the degree governor.

    Attributes
    ----------
    policy:
        Fixed-max or adaptive.
    max_degree:
        Degree used at zero pressure (and always, under ``FIXED``).
    min_degree:
        Floor the adaptive policy never goes below.
    pressure_step:
        Pressure units (queued + running queries) per halving.
    """

    policy: GovernorPolicy = GovernorPolicy.ADAPTIVE
    max_degree: int = 8
    min_degree: int = 1
    pressure_step: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", GovernorPolicy(self.policy))
        if self.min_degree < 1:
            raise ConfigurationError(
                f"min_degree must be >= 1, got {self.min_degree}"
            )
        if self.max_degree < self.min_degree:
            raise ConfigurationError(
                f"max_degree {self.max_degree} < min_degree {self.min_degree}"
            )
        if self.pressure_step < 1:
            raise ConfigurationError(
                f"pressure_step must be >= 1, got {self.pressure_step}"
            )


@dataclass
class DegreeGovernor:
    """Stateless degree selection + a histogram of what it chose."""

    config: GovernorConfig = field(default_factory=GovernorConfig)
    #: degree -> number of placements made at that degree.
    chosen: dict[int, int] = field(default_factory=dict, init=False)
    #: pressure seen at the most recent :meth:`degree` call (telemetry).
    last_pressure: int = field(default=0, init=False)
    #: degree returned by the most recent :meth:`degree` call (telemetry).
    last_degree: int = field(default=0, init=False)

    def degree(self, pressure: int) -> int:
        """The clone-degree cap for a placement under ``pressure``.

        Pressure is the number of queries competing for the pool right
        now: queued (runnable) plus running.  The job being placed is
        not yet counted in either.
        """
        cfg = self.config
        if cfg.policy is GovernorPolicy.FIXED:
            k = cfg.max_degree
        else:
            halvings = max(0, pressure) // cfg.pressure_step
            k = max(cfg.min_degree, cfg.max_degree >> halvings)
        self.chosen[k] = self.chosen.get(k, 0) + 1
        self.last_pressure = pressure
        self.last_degree = k
        return k
