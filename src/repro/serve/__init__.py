"""Online multi-query scheduler service (the serve layer).

Turns the batch reproduction into a long-running service: a stream of
queries is admitted (:mod:`repro.serve.admission`), degree-governed
(:mod:`repro.serve.governor`), placed onto a shared site pool through
incremental reschedule deltas (:mod:`repro.serve.pool`), and executed
under fluid fair-share contention (:mod:`repro.serve.executor`) — all
on a deterministic virtual clock (:mod:`repro.serve.clock`), with an
optional read-only telemetry plane (:mod:`repro.serve.telemetry`)
sampling metrics and SLO attainment in virtual time.  See DESIGN.md
§2.8/§2.10 and the ``serve`` CLI target.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.clock import VirtualTimeEventLoop, run_virtual
from repro.serve.executor import FluidExecutor
from repro.serve.governor import DegreeGovernor, GovernorConfig, GovernorPolicy
from repro.serve.pool import SitePool
from repro.serve.service import (
    JobRecord,
    SchedulerService,
    ServeConfig,
    ServiceReport,
)
from repro.serve.telemetry import (
    ServiceTelemetry,
    SLOTarget,
    TelemetryConfig,
)
from repro.serve.workload import (
    ArrivalMode,
    JobFactory,
    QueryJob,
    QueryTemplate,
    SLOClass,
    WorkloadSpec,
    diurnal_factor,
    make_templates,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ArrivalMode",
    "DegreeGovernor",
    "FluidExecutor",
    "GovernorConfig",
    "GovernorPolicy",
    "JobFactory",
    "JobRecord",
    "QueryJob",
    "QueryTemplate",
    "SLOClass",
    "SLOTarget",
    "SchedulerService",
    "ServeConfig",
    "ServiceReport",
    "ServiceTelemetry",
    "SitePool",
    "TelemetryConfig",
    "VirtualTimeEventLoop",
    "WorkloadSpec",
    "diurnal_factor",
    "make_templates",
    "run_virtual",
]
