"""Fluid execution of resident queries on the virtual clock.

The executor is the serve-layer counterpart of the fluid fair-share
policy in :mod:`repro.sim.simulator`: instead of event-stepping one
static schedule, it advances a *changing* population of queries.  Each
running query ``q`` has remaining work ``R_q`` (initialized to its
stand-alone response time ``T0`` at the scheduled degree) and progresses
at rate

    ``r_q = min over hosts(q) of capacity(site) / residents(site)``

— the fair share of its most contended site, since a query proceeds at
the pace of its slowest clone.  On the homogeneous unit pool
(``capacity_of`` omitted) this reduces exactly to the classic
``1 / max residents``: correctly-rounded division is monotone, so the
two forms are bitwise equal.  Rates are piecewise constant between
*events* (a launch, a retirement, an elastic capacity change signalled
via :meth:`FluidExecutor.notify_rates_changed`), so the executor simply
computes the next completion time analytically, sleeps the virtual
clock to whichever comes first — that completion or a membership change
— and integrates progress over the elapsed interval.  No polling, no
tolerance-tuned time steps, and byte-deterministic on the virtual loop.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import ServiceError

__all__ = ["FluidExecutor"]

#: Relative slack for "remaining work is zero" (pure float drift guard).
_COMPLETION_SLACK = 1e-9


@dataclass
class _Running:
    name: str
    demand: float
    remaining: float
    hosts: tuple[int, ...]
    started_at: float


@dataclass
class FluidExecutor:
    """Advances resident queries under fair-share site contention.

    Parameters
    ----------
    residents_of:
        Site index -> number of distinct query-operators resident there
        (the pool's co-residency view; drives the fair-share rate).
    on_complete:
        Called synchronously, in launch order, as each query finishes:
        ``on_complete(name, finished_at)``.  The service uses it to
        retire the pool entry, resolve the client future, and record the
        job — all before the next rate recomputation, so retirement
        immediately speeds up the survivors.
    capacity_of:
        Site index -> relative speed (the pool's heterogeneity view).
        ``None`` means every site is the paper's unit site.
    """

    residents_of: Callable[[int], int]
    on_complete: Callable[[str, float], None]
    capacity_of: "Callable[[int], float] | None" = None

    _running: dict[str, _Running] = field(default_factory=dict, init=False)
    _changed: asyncio.Event = field(default_factory=asyncio.Event, init=False)
    _draining: bool = field(default=False, init=False)
    #: ∫ busy-sites dt and ∫ running-queries dt, for the report.
    busy_site_seconds: float = field(default=0.0, init=False)
    query_seconds: float = field(default=0.0, init=False)

    @property
    def running_count(self) -> int:
        """Queries currently executing."""
        return len(self._running)

    @property
    def backlog_seconds(self) -> float:
        """Total remaining stand-alone work of the running set."""
        return sum(q.remaining for q in self._running.values())

    def launch(self, name: str, demand: float, hosts: tuple[int, ...], now: float) -> None:
        """Admit a placed query into the fluid race."""
        if name in self._running:
            raise ServiceError(f"query {name!r} is already running")
        if demand <= 0.0:
            raise ServiceError(
                f"query {name!r} has non-positive demand {demand}"
            )
        self._running[name] = _Running(
            name=name,
            demand=demand,
            remaining=demand,
            hosts=tuple(hosts),
            started_at=now,
        )
        self._changed.set()

    def stop_when_idle(self) -> None:
        """Let the run loop exit once the last query completes."""
        self._draining = True
        self._changed.set()

    def notify_rates_changed(self) -> None:
        """Wake the run loop to recompute rates (e.g. a capacity change).

        The current interval is integrated at the rates that were in
        force, then the next interval picks up the new per-site
        capacities — exactly how launches and retirements propagate.
        """
        self._changed.set()

    def _rate(self, query: _Running) -> float:
        best = None
        for site in query.hosts:
            residents = self.residents_of(site)
            if residents < 1:
                raise ServiceError(
                    f"query {query.name!r} runs on a site with no residents "
                    "(pool and executor disagree)"
                )
            capacity = 1.0 if self.capacity_of is None else self.capacity_of(site)
            share = capacity / residents
            if best is None or share < best:
                best = share
        return best

    def _advance(self, rates: dict[str, float], elapsed: float, now: float) -> None:
        """Integrate ``elapsed`` seconds of progress and fire completions."""
        if elapsed > 0.0:
            # Queries launched during the wait are not in ``rates``: they
            # joined at the interval's end and make no progress over it.
            interval = [q for q in self._running.values() if q.name in rates]
            self.busy_site_seconds += elapsed * len(
                {s for q in interval for s in q.hosts}
            )
            self.query_seconds += elapsed * len(interval)
            for query in interval:
                query.remaining -= elapsed * rates[query.name]
        done = [
            q.name
            for q in self._running.values()
            if q.remaining <= _COMPLETION_SLACK * max(1.0, q.demand)
        ]
        for name in done:
            del self._running[name]
            self.on_complete(name, now)

    async def run(self) -> None:
        """Drive the fluid race until drained.

        Exits when :meth:`stop_when_idle` was called and no query
        remains.  Each iteration waits for ``min(remaining/rate)`` of
        virtual time *or* a membership change, whichever fires first,
        then integrates the interval at the rates that were in force.
        """
        loop = asyncio.get_running_loop()
        while True:
            self._changed.clear()
            if not self._running:
                if self._draining:
                    return
                await self._changed.wait()
                continue
            rates = {q.name: self._rate(q) for q in self._running.values()}
            dt = min(q.remaining / rates[q.name] for q in self._running.values())
            started = loop.time()
            sleeper = asyncio.ensure_future(asyncio.sleep(dt))
            waker = asyncio.ensure_future(self._changed.wait())
            try:
                await asyncio.wait(
                    (sleeper, waker), return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                for task in (sleeper, waker):
                    if not task.done():
                        task.cancel()
                        try:
                            await task
                        except asyncio.CancelledError:
                            pass
            now = loop.time()
            self._advance(rates, now - started, now)
