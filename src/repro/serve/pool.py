"""Shared site pool: the residual-capacity ledger of the service.

Every running query occupies one operator entry (its ``k`` clones on
``k`` distinct sites, constraint (A)) in a single long-lived
:class:`~repro.core.schedule.Schedule`.  Installing and retiring queries
goes through the rescheduler registry — the same
:class:`~repro.core.reschedule.ScheduleDelta` repair path PR 6 built for
fault recovery — so admitting query number 10\\ :sup:`3` costs
O(k · log p), never a cold re-pack of everything resident.

The pool is also the service's contention model: a site of capacity
``c`` hosting ``m`` query-operators runs each at rate ``c/m`` (fair
share, matching the fluid simulator's stance in :mod:`repro.sim`), so
:meth:`residents_of` and :meth:`capacity_of` feed the executor's
progress rates and :meth:`has_capacity` gates placement on a
co-residency limit rather than raw site count.  :meth:`set_capacity` is
the elasticity primitive: it resizes one site *in place* through a
:class:`~repro.core.reschedule.ScheduleDelta` — residents stay put, no
cold re-pack — and the executor picks the new rates up at its next
event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, ServiceError
from repro.core.reschedule import ScheduleDelta
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.vector_packing import CloneItem, PlacementRule, SortKey
from repro.core.work_vector import WorkVector
from repro.engine.registry import get_rescheduler
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.metrics import MetricsRecorder

__all__ = ["SitePool"]


@dataclass
class SitePool:
    """A ``p``-site pool that installs/retires queries via repair deltas.

    Attributes
    ----------
    p:
        Number of sites.
    overlap:
        Overlap model used to derive per-clone ``T_seq`` on placement.
    max_coresident:
        Soft co-residency cap: :meth:`has_capacity` only counts sites
        hosting fewer than this many query-operators, bounding the
        fair-share slowdown any single query can suffer.
    strategy:
        Rescheduler registry name used for install/retire repairs.
    capacities:
        Optional per-site relative speeds (length ``p``); ``None`` means
        the homogeneous unit pool.  Mutated in place by
        :meth:`set_capacity`.
    metrics:
        Optional :class:`~repro.engine.metrics.MetricsRecorder` threaded
        through every repair call, so install/retire/resize deltas count
        their ``reschedules``/``clones_moved``/``sites_drained``/
        ``sites_resized`` work into the owning service's recorder.
    """

    p: int
    overlap: OverlapModel
    max_coresident: int = 4
    strategy: str = "repair"
    sort: SortKey = SortKey.MAX_COMPONENT
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH
    capacities: "tuple[float, ...] | None" = None
    metrics: "MetricsRecorder | None" = None

    _schedule: Schedule | None = field(default=None, init=False)
    #: cumulative repair placement scans, for the service report.
    placement_scans: int = field(default=0, init=False)
    installs: int = field(default=0, init=False)
    retires: int = field(default=0, init=False)
    #: elastic capacity changes applied (see :meth:`set_capacity`).
    resizes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigurationError(f"pool needs p >= 1 sites, got {self.p}")
        if self.max_coresident < 1:
            raise ConfigurationError(
                f"max_coresident must be >= 1, got {self.max_coresident}"
            )
        if self.capacities is not None:
            if len(self.capacities) != self.p:
                raise ConfigurationError(
                    f"pool has p={self.p} sites but got "
                    f"{len(self.capacities)} capacities"
                )
            for capacity in self.capacities:
                if not capacity > 0.0 or capacity != capacity or capacity == float("inf"):
                    raise ConfigurationError(
                        f"site capacities must be positive finite numbers, "
                        f"got {capacity!r}"
                    )
            self.capacities = tuple(float(c) for c in self.capacities)

    @property
    def schedule(self) -> Schedule | None:
        """The live ledger schedule (``None`` before the first install)."""
        return self._schedule

    @property
    def running(self) -> frozenset[str]:
        """Names of the queries currently resident in the pool."""
        if self._schedule is None:
            return frozenset()
        return self._schedule.operators

    def _repair(self, delta: ScheduleDelta) -> None:
        stats = get_rescheduler(self.strategy)(
            self._schedule,
            delta,
            overlap=self.overlap,
            sort=self.sort,
            rule=self.rule,
            metrics=self.metrics,
        )
        self.placement_scans += stats.placement_scans

    def install(self, name: str, loads: tuple[WorkVector, ...]) -> tuple[int, ...]:
        """Place one query's per-site load vectors; return its host sites.

        ``loads`` holds one aggregate work vector per clone (the query's
        phased schedule collapsed site-wise); each becomes one
        :class:`~repro.core.vector_packing.CloneItem` of the pool
        operator ``name``, and constraint (A) inside the repair pass
        guarantees the clones land on ``len(loads)`` distinct sites.
        """
        if not loads:
            raise ServiceError(f"query {name!r} has no load vectors to install")
        if len(loads) > self.p:
            raise ServiceError(
                f"query {name!r} wants {len(loads)} sites; pool has {self.p}"
            )
        if self._schedule is None:
            self._schedule = Schedule(self.p, loads[0].d, self.capacities)
        if name in self._schedule.operators:
            raise ServiceError(f"query {name!r} is already installed")
        items = tuple(
            CloneItem(operator=name, clone_index=i, work=work)
            for i, work in enumerate(loads)
        )
        self._repair(ScheduleDelta(add_items=items))
        self.installs += 1
        return self._schedule.home(name).site_indices

    def retire(self, name: str) -> None:
        """Remove a completed query from the ledger."""
        if self._schedule is None or name not in self._schedule.operators:
            raise ServiceError(f"cannot retire {name!r}: not installed")
        self._repair(ScheduleDelta(remove_operators=(name,)))
        self.retires += 1

    def residents_of(self, site_index: int) -> int:
        """Distinct query-operators resident on one site."""
        if self._schedule is None:
            return 0
        return len(self._schedule.site(site_index).operators)

    def capacity_of(self, site_index: int) -> float:
        """Relative speed of one site (``1.0`` on the homogeneous pool)."""
        if self._schedule is not None:
            return self._schedule.site(site_index).capacity
        if self.capacities is not None:
            return self.capacities[site_index]
        return 1.0

    def set_capacity(self, site_index: int, capacity: float) -> None:
        """Elastically resize one site in place (residents stay put).

        Routed through the rescheduler as a pure
        ``ScheduleDelta(set_capacities=...)`` — an O(1) mutation of the
        live ledger, never a re-pack — so a mid-serve scale-up/-down
        only changes the *rates* the executor observes, not any query's
        placement.  Before the first install the change lands in the
        stored :attr:`capacities` snapshot instead.
        """
        if not 0 <= site_index < self.p:
            raise ServiceError(
                f"cannot resize site {site_index}: pool has p={self.p}"
            )
        # Delta construction validates the capacity value itself.
        delta = ScheduleDelta(set_capacities=((site_index, float(capacity)),))
        with current_tracer().span(
            "capacity_change", site=site_index, capacity=float(capacity)
        ):
            if self._schedule is None:
                caps = list(self.capacities or (1.0,) * self.p)
                caps[site_index] = float(capacity)
                self.capacities = tuple(caps)
                # The repair path counts resizes itself; this pre-install
                # branch never reaches it, so keep the counter whole here.
                if self.metrics is not None:
                    self.metrics.count("sites_resized")
            else:
                self._repair(delta)
        self.resizes += 1

    def has_capacity(self, k: int) -> bool:
        """Can a degree-``k`` query join without breaching co-residency?

        True when at least ``k`` enabled sites host fewer than
        ``max_coresident`` query-operators.  A soft gate: the repair
        itself only enforces distinct-site placement, so this is the
        knob that makes placement *wait* instead of piling everything
        onto the pool at once.
        """
        if self._schedule is None:
            return k <= self.p
        open_sites = sum(
            1
            for site in self._schedule.enabled_sites()
            if len(site.operators) < self.max_coresident
        )
        return open_sites >= k

    def utilization(self) -> dict[str, float]:
        """Snapshot for the report: occupancy and co-residency."""
        if self._schedule is None:
            return {"occupied_sites": 0.0, "resident_queries": 0.0, "max_residents": 0.0}
        counts = [len(s.operators) for s in self._schedule.sites]
        return {
            "occupied_sites": float(sum(1 for c in counts if c)),
            "resident_queries": float(len(self._schedule.operators)),
            "max_residents": float(max(counts) if counts else 0),
        }
