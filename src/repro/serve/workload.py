"""Seeded query-stream generation for the online scheduler service.

A service run is driven by a :class:`WorkloadSpec`: either an **open**
arrival process (Poisson arrivals whose rate follows a diurnal curve —
arrivals keep coming regardless of how far the service falls behind) or
a **closed** loop (a fixed population of clients that each submit a
query, wait for its outcome, think for an exponentially distributed
pause, and submit again — offered load self-regulates with service
capacity, the classic closed-loop benchmark harness).

Queries are drawn from a small pool of **templates** — ``(n_joins,
workload seed)`` pairs resolved through the usual seeded generator
(:func:`repro.experiments.runner.prepare_workload`) — mirroring a real
system serving a fixed set of parameterized query shapes.  Template
reuse is also what makes the service fast: the structural cohort and
annotation caches mean each template is generated and costed once per
process, and the per-``(template, degree)`` schedule memo in the
service layer means it is scheduled once per degree.

Everything is seeded through :class:`random.Random`; two runs with the
same spec produce the identical arrival sequence, class labels, and
template choices on any machine.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = [
    "ArrivalMode",
    "SLOClass",
    "QueryTemplate",
    "QueryJob",
    "WorkloadSpec",
    "JobFactory",
    "make_templates",
    "diurnal_factor",
]


class ArrivalMode(str, enum.Enum):
    """How new queries enter the system."""

    #: Poisson arrivals at a (diurnally modulated) offered rate,
    #: independent of completions.
    OPEN = "open"
    #: A fixed client population with exponential think times; each
    #: client waits for its query's outcome before thinking again.
    CLOSED = "closed"


class SLOClass(str, enum.Enum):
    """Per-query service-level objective class.

    ``LATENCY`` queries are interactive: the admission controller keeps
    accepting them up to the hard queue cap and the placement loop
    serves them first.  ``BATCH`` queries tolerate delay: past the
    high-water mark they are parked (deferred) until the queue drains.
    """

    LATENCY = "latency"
    BATCH = "batch"


@dataclass(frozen=True)
class QueryTemplate:
    """One reusable query shape: a seeded workload coordinate.

    ``(n_joins, 1, seed)`` addresses exactly one generated query through
    :func:`repro.experiments.runner.prepare_workload`, so a template is
    a *value* — services, benchmarks, and the artifact store can all
    name the same query without sharing objects.
    """

    index: int
    n_joins: int
    seed: int


@dataclass(frozen=True)
class QueryJob:
    """One query instance travelling through the service.

    Attributes
    ----------
    job_id:
        Dense arrival index (assigned in submission order).
    slo:
        The job's service-level class.
    template:
        The query shape this job executes.
    submitted_at:
        Virtual time of submission.
    client:
        Submitting client index (closed mode; ``-1`` for open arrivals).
    """

    job_id: int
    slo: SLOClass
    template: QueryTemplate
    submitted_at: float
    client: int = -1


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one service workload.

    Attributes
    ----------
    duration:
        Virtual seconds during which new work is generated; the service
        then drains what was admitted.
    arrival:
        Open (Poisson) or closed (client population) arrivals.
    rate:
        Mean arrival rate in queries per virtual second (open mode; the
        diurnal curve modulates around this level).
    diurnal_amplitude:
        Relative amplitude of the sinusoidal rate modulation in
        ``[0, 1)``; ``0`` gives a homogeneous Poisson process.
    diurnal_period:
        Period of the diurnal curve in virtual seconds (defaults to the
        generation window, i.e. one full cycle per run).
    clients:
        Client population size (closed mode).
    think_mean:
        Mean exponential think time between a client's queries in
        virtual seconds (closed mode).
    latency_mix:
        Probability that a job is latency-class (the rest are batch).
    query_sizes:
        Join counts the template pool cycles through.
    template_pool:
        Number of distinct query templates.
    seed:
        Master seed; every stream (arrivals, think times, class labels,
        template choices) derives from it deterministically.
    """

    duration: float = 300.0
    arrival: ArrivalMode = ArrivalMode.OPEN
    rate: float = 1.0
    diurnal_amplitude: float = 0.0
    diurnal_period: float | None = None
    clients: int = 8
    think_mean: float = 10.0
    latency_mix: float = 0.5
    query_sizes: tuple[int, ...] = (4, 6, 8)
    template_pool: int = 12
    seed: int = 1996

    def __post_init__(self) -> None:
        object.__setattr__(self, "query_sizes", tuple(self.query_sizes))
        object.__setattr__(self, "arrival", ArrivalMode(self.arrival))
        if self.duration <= 0.0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration}")
        if self.rate <= 0.0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period is not None and self.diurnal_period <= 0.0:
            raise ConfigurationError(
                f"diurnal period must be > 0, got {self.diurnal_period}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.think_mean < 0.0:
            raise ConfigurationError(
                f"think time must be >= 0, got {self.think_mean}"
            )
        if self.arrival is ArrivalMode.CLOSED and self.think_mean <= 0.0:
            # A zero think time would let a client whose submission is
            # shed resubmit at the same virtual instant, forever.
            raise ConfigurationError(
                "closed-loop arrivals need think_mean > 0"
            )
        if not 0.0 <= self.latency_mix <= 1.0:
            raise ConfigurationError(
                f"latency mix must be in [0, 1], got {self.latency_mix}"
            )
        if not self.query_sizes or any(s < 1 for s in self.query_sizes):
            raise ConfigurationError("query_sizes must be non-empty positive ints")
        if self.template_pool < 1:
            raise ConfigurationError(
                f"template pool must be >= 1, got {self.template_pool}"
            )


def diurnal_factor(t: float, spec: WorkloadSpec) -> float:
    """The arrival-rate multiplier at virtual time ``t``.

    ``1 + amplitude * sin(2π t / period)``, floored at 0.05 so the
    process never fully stops (expovariate needs a positive rate).
    """
    if spec.diurnal_amplitude == 0.0:
        return 1.0
    period = spec.diurnal_period if spec.diurnal_period is not None else spec.duration
    factor = 1.0 + spec.diurnal_amplitude * math.sin(2.0 * math.pi * t / period)
    return max(factor, 0.05)


def make_templates(spec: WorkloadSpec) -> tuple[QueryTemplate, ...]:
    """The spec's deterministic template pool.

    Template ``i`` takes the ``i``-th query size (cycling) and workload
    seed ``seed * 1000 + i``, so pools of different runs with the same
    master seed coincide and the per-process workload caches stay warm
    across service runs.
    """
    return tuple(
        QueryTemplate(
            index=i,
            n_joins=spec.query_sizes[i % len(spec.query_sizes)],
            seed=spec.seed * 1000 + i,
        )
        for i in range(spec.template_pool)
    )


@dataclass
class JobFactory:
    """Seeded draw of per-job attributes (class label, template).

    Split from the arrival processes so open and closed generators
    produce identically distributed jobs from one stream of decisions.
    """

    spec: WorkloadSpec
    _rng: random.Random = field(init=False)
    _templates: tuple[QueryTemplate, ...] = field(init=False)
    _next_id: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.spec.seed * 7919 + 1)
        self._templates = make_templates(self.spec)

    def job(self, submitted_at: float, client: int = -1) -> QueryJob:
        """Draw the next job (ids are dense and in submission order)."""
        slo = (
            SLOClass.LATENCY
            if self._rng.random() < self.spec.latency_mix
            else SLOClass.BATCH
        )
        template = self._templates[self._rng.randrange(len(self._templates))]
        job = QueryJob(
            job_id=self._next_id,
            slo=slo,
            template=template,
            submitted_at=submitted_at,
            client=client,
        )
        self._next_id += 1
        return job
