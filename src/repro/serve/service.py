"""The online scheduler service: admission → queue → placement → governor.

:class:`SchedulerService` is the tentpole of the serve layer — a
long-running (in virtual time) asyncio program that admits a stream of
concurrent queries onto one shared :class:`~repro.serve.pool.SitePool`:

1. a load generator (:mod:`repro.serve.workload`) submits jobs in open
   or closed arrival mode;
2. the :class:`~repro.serve.admission.AdmissionController` decides
   admit/defer/shed against its bounded two-class queue;
3. the placement loop pops runnable jobs (latency-class first), asks the
   :class:`~repro.serve.governor.DegreeGovernor` for a clone-degree cap
   from current pressure, schedules the job's template with the
   registered algorithm (TREESCHEDULE by default) at that degree, and
   installs its per-site footprint into the pool through a repair delta;
4. the :class:`~repro.serve.executor.FluidExecutor` races the resident
   queries under fair-share contention; each completion retires the
   query's delta from the pool, resolves the submitting client's future,
   and frees capacity for the next placement.

Everything runs on the :class:`~repro.serve.clock.VirtualTimeEventLoop`,
so a run is a deterministic function of the
:class:`~repro.serve.service.ServeConfig` alone: same config, same
:meth:`ServiceReport.summary`, on any machine, at any level of host
parallelism (the service is single-loop by construction — worker counts
do not exist here, which is how the "identical summaries at any worker
count" guarantee is discharged).
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.core.cluster import ClusterSpec
from repro.core.resource_model import ConvexCombinationOverlap
from repro.core.work_vector import WorkVector
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.engine.metrics import (
    COUNTER_QUERIES_ADMITTED,
    COUNTER_QUERIES_COMPLETED,
    COUNTER_QUERIES_DEFERRED,
    COUNTER_QUERIES_OFFERED,
    COUNTER_QUERIES_SHED,
    TIMER_SERVE,
    MetricsRecorder,
)
from repro.engine.result import ScheduleResult
from repro.obs.tracer import current_tracer
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.clock import run_virtual
from repro.serve.executor import FluidExecutor
from repro.serve.governor import DegreeGovernor, GovernorConfig
from repro.serve.pool import SitePool
from repro.serve.telemetry import ServiceTelemetry, TelemetryConfig
from repro.serve.workload import (
    ArrivalMode,
    JobFactory,
    QueryJob,
    QueryTemplate,
    WorkloadSpec,
    diurnal_factor,
)

__all__ = ["ServeConfig", "JobRecord", "ServiceReport", "SchedulerService"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one service run depends on.

    Attributes
    ----------
    p:
        Sites in the shared pool.
    f, epsilon, params:
        The usual scheduling knobs, passed through to the registered
        algorithm per placement.
    algorithm:
        Registered scheduler used for placements.
    workload:
        Arrival process and query mix.
    admission:
        Bounded-queue thresholds.
    governor:
        Degree policy (the governor's ``max_degree`` is also the site
        budget each query is scheduled against).
    max_coresident:
        Pool co-residency cap gating placement.
    cluster:
        Optional heterogeneous pool description; must agree with ``p``.
        ``None`` keeps the homogeneous unit pool.
    capacity_events:
        Elastic scaling script: ``(at, site, capacity)`` triples applied
        to the live pool at virtual time ``at`` via
        :meth:`~repro.serve.pool.SitePool.set_capacity` — residents stay
        put, only rates change.
    telemetry:
        Optional :class:`~repro.serve.telemetry.TelemetryConfig`
        enabling the read-only metrics/SLO sampling plane.  Telemetry
        never changes virtual-time results or the summary; one caveat:
        its always-pending sampler timer means a genuine service
        deadlock loops in virtual time instead of tripping the clock's
        deadlock guard, so leave it off for liveness tests.
    """

    p: int = 16
    f: float = 0.25
    epsilon: float = 0.5
    params: SystemParameters = PAPER_PARAMETERS
    algorithm: str = "treeschedule"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    governor: GovernorConfig = field(default_factory=GovernorConfig)
    max_coresident: int = 4
    cluster: ClusterSpec | None = None
    capacity_events: tuple[tuple[float, int, float], ...] = ()
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigurationError(f"p must be >= 1, got {self.p}")
        if self.governor.max_degree > self.p:
            raise ConfigurationError(
                f"governor max_degree {self.governor.max_degree} exceeds "
                f"pool size p={self.p}"
            )
        if self.max_coresident < 1:
            raise ConfigurationError(
                f"max_coresident must be >= 1, got {self.max_coresident}"
            )
        if self.cluster is not None and self.cluster.p != self.p:
            raise ConfigurationError(
                f"cluster spec describes {self.cluster.p} sites but p={self.p}"
            )
        events = []
        for event in self.capacity_events:
            try:
                at, site, capacity = event
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"capacity events must be (at, site, capacity) triples, "
                    f"got {event!r}"
                ) from None
            at, site, capacity = float(at), int(site), float(capacity)
            if at < 0.0:
                raise ConfigurationError(
                    f"capacity event time must be >= 0, got {at}"
                )
            if not 0 <= site < self.p:
                raise ConfigurationError(
                    f"capacity event site {site} out of range for p={self.p}"
                )
            if not capacity > 0.0 or capacity != capacity or capacity == float("inf"):
                raise ConfigurationError(
                    f"capacity event capacity must be a positive finite "
                    f"number, got {capacity!r}"
                )
            events.append((at, site, capacity))
        object.__setattr__(self, "capacity_events", tuple(events))


@dataclass
class JobRecord:
    """Lifecycle of one submitted job, in virtual seconds.

    ``started``/``finished`` stay ``None`` for shed jobs;
    ``base_response`` is the stand-alone response time ``T0`` the query
    was scheduled for at ``degree`` (its fluid demand), so
    ``latency / base_response`` is the job's contention slowdown.
    """

    job_id: int
    slo: str
    template: int
    n_joins: int
    submitted: float
    outcome: str = "pending"
    deferred: bool = False
    degree: int = 0
    sites: int = 0
    base_response: float = 0.0
    started: float | None = None
    finished: float | None = None

    @property
    def wait(self) -> float | None:
        """Queue wait: submission to placement."""
        return None if self.started is None else self.started - self.submitted

    @property
    def latency(self) -> float | None:
        """End-to-end: submission to completion."""
        return None if self.finished is None else self.finished - self.submitted


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Edge behavior, relied on by the summary and its tests: an empty list
    returns the sentinel ``0.0`` (there is no order statistic to report,
    and the summary's other empty-case fields are zero too); a single
    element is every percentile of itself; the rank is clamped into
    ``[1, len]`` so no ``q`` — including float-noise values just above
    100 — can index out of range.
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values), max(1, math.ceil(q / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def _round(x: float) -> float:
    return round(x, 9)


@dataclass
class ServiceReport:
    """Outcome of one service run: per-job records plus aggregates."""

    config: ServeConfig
    records: list[JobRecord]
    metrics: MetricsRecorder
    degree_histogram: dict[int, int]
    admission_decisions: dict[tuple[str, str], int]
    promoted: int
    placement_scans: int
    busy_site_seconds: float
    query_seconds: float
    finished_at: float
    wall_seconds: float
    sites_resized: int = 0

    def _latency_block(self, records: list[JobRecord]) -> dict:
        latencies = sorted(r.latency for r in records if r.latency is not None)
        waits = [r.wait for r in records if r.wait is not None]
        return {
            "completed": len(latencies),
            "p50": _round(_percentile(latencies, 50.0)),
            "p95": _round(_percentile(latencies, 95.0)),
            "p99": _round(_percentile(latencies, 99.0)),
            "mean_wait": _round(math.fsum(waits) / len(waits)) if waits else 0.0,
        }

    def summary(self) -> dict:
        """Deterministic run summary (no wall-clock, JSON-ready).

        Two runs with equal configs produce equal summaries — this dict
        is what the CLI prints, what the bench records, and what the
        determinism tests compare.
        """
        completed = [r for r in self.records if r.outcome == "completed"]
        elapsed = max(self.config.workload.duration, self.finished_at)
        degrees = [r.degree for r in completed]
        by_outcome: dict[str, int] = {}
        for r in self.records:
            by_outcome[r.outcome] = by_outcome.get(r.outcome, 0) + 1
        return {
            "offered": len(self.records),
            "outcomes": dict(sorted(by_outcome.items())),
            "deferred_then_run": sum(1 for r in self.records if r.deferred),
            "elapsed": _round(elapsed),
            "qps": _round(len(completed) / elapsed) if elapsed else 0.0,
            "latency": {
                "all": self._latency_block(completed),
                "latency_class": self._latency_block(
                    [r for r in completed if r.slo == "latency"]
                ),
                "batch_class": self._latency_block(
                    [r for r in completed if r.slo == "batch"]
                ),
            },
            "degrees": {
                "min": min(degrees) if degrees else 0,
                "max": max(degrees) if degrees else 0,
                "mean": _round(math.fsum(degrees) / len(degrees))
                if degrees
                else 0.0,
                "histogram": {
                    str(k): v for k, v in sorted(self.degree_histogram.items())
                },
            },
            "mean_slowdown": _round(
                math.fsum(r.latency / r.base_response for r in completed)
                / len(completed)
            )
            if completed
            else 0.0,
            "pool": self._pool_block(elapsed),
        }

    def _pool_block(self, elapsed: float) -> dict:
        block = {
            "placement_scans": self.placement_scans,
            "promoted": self.promoted,
            "site_utilization": _round(
                self.busy_site_seconds / (self.config.p * elapsed)
            )
            if elapsed
            else 0.0,
            "mean_concurrency": _round(self.query_seconds / elapsed)
            if elapsed
            else 0.0,
        }
        # Only elastic runs grow the extra key, keeping the classic
        # summary byte-identical.
        if self.sites_resized:
            block["sites_resized"] = self.sites_resized
        return block


class SchedulerService:
    """One online scheduling run over a shared site pool.

    Construct with a :class:`ServeConfig`, call :meth:`run` (synchronous
    — it owns a private virtual-time event loop), read the returned
    :class:`ServiceReport`.
    """

    def __init__(self, config: ServeConfig, *, store=None) -> None:
        self.config = config
        self.store = store
        self.metrics = MetricsRecorder()
        overlap = ConvexCombinationOverlap(config.epsilon)
        self.pool = SitePool(
            p=config.p,
            overlap=overlap,
            max_coresident=config.max_coresident,
            capacities=(
                config.cluster.capacities_or_none()
                if config.cluster is not None
                else None
            ),
            metrics=self.metrics,
        )
        self.admission = AdmissionController(config.admission)
        self.governor = DegreeGovernor(config.governor)
        self.executor = FluidExecutor(
            residents_of=self.pool.residents_of,
            on_complete=self._on_complete,
            capacity_of=self.pool.capacity_of,
        )
        self.telemetry = (
            ServiceTelemetry(
                config.telemetry,
                p=config.p,
                admission=self.admission,
                pool=self.pool,
                governor=self.governor,
                executor=self.executor,
                metrics=self.metrics,
            )
            if config.telemetry is not None
            else None
        )
        self.records: dict[int, JobRecord] = {}
        self._futures: dict[int, asyncio.Future] = {}
        self._queue_event: asyncio.Event | None = None
        self._capacity_event: asyncio.Event | None = None
        self._intake_closed = False
        self._finished_at = 0.0
        # (template index, degree) -> ScheduleResult; the service's
        # schedule-once-per-shape memo.
        self._schedule_memo: dict[tuple[int, int], ScheduleResult] = {}
        self._queries: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Submission path (called by the load generator)
    # ------------------------------------------------------------------
    def submit(self, job: QueryJob) -> asyncio.Future:
        """Offer one job; returns a future resolving at its outcome.

        The future resolves with the job's final outcome string:
        immediately (``"shed"``) or at completion (``"completed"``).
        Closed-loop clients await it; open mode ignores it.
        """
        loop = asyncio.get_running_loop()
        self.metrics.count(COUNTER_QUERIES_OFFERED)
        record = JobRecord(
            job_id=job.job_id,
            slo=job.slo.value,
            template=job.template.index,
            n_joins=job.template.n_joins,
            submitted=job.submitted_at,
        )
        self.records[job.job_id] = record
        future = loop.create_future()
        self._futures[job.job_id] = future
        with current_tracer().span(
            "serve_admit", job=job.job_id, slo=job.slo.value
        ) as span:
            decision = self.admission.submit(job)
            if span is not None:
                span.attributes["decision"] = decision.value
        if decision is AdmissionDecision.SHED:
            self.metrics.count(COUNTER_QUERIES_SHED)
            record.outcome = "shed"
            future.set_result("shed")
        elif decision is AdmissionDecision.DEFERRED:
            self.metrics.count(COUNTER_QUERIES_DEFERRED)
            record.deferred = True
        else:
            self.metrics.count(COUNTER_QUERIES_ADMITTED)
        return future

    # ------------------------------------------------------------------
    # Placement path
    # ------------------------------------------------------------------
    def _annotated_query(self, template: QueryTemplate):
        from repro.experiments.runner import prepare_workload

        query = self._queries.get(template.index)
        if query is None:
            query = prepare_workload(
                template.n_joins, 1, template.seed, self.config.params,
                store=self.store,
            )[0]
            self._queries[template.index] = query
        return query

    def _schedule_template(
        self, template: QueryTemplate, degree: int
    ) -> ScheduleResult:
        """Schedule one template at a degree cap, memoized per pair."""
        from repro.experiments.runner import schedule_query

        memo_key = (template.index, degree)
        result = self._schedule_memo.get(memo_key)
        if result is None:
            cache_key = (
                {
                    "workload": {
                        "n_joins": template.n_joins,
                        "n_queries": 1,
                        "seed": template.seed,
                    },
                    "index": 0,
                }
                if self.store is not None
                else None
            )
            result = schedule_query(
                self.config.algorithm,
                self._annotated_query(template),
                p=degree,
                f=self.config.f,
                epsilon=self.config.epsilon,
                params=self.config.params,
                metrics=self.metrics,
                store=self.store,
                cache_key=cache_key,
            )
            self._schedule_memo[memo_key] = result
        return result

    @staticmethod
    def _footprint(result: ScheduleResult) -> tuple[WorkVector, ...]:
        """Collapse a query's phased schedule into per-site load vectors.

        One aggregate vector per *used* virtual site — that is the
        query's residency footprint in the shared pool (its clone count
        there), independent of how many phases the stand-alone schedule
        had.
        """
        phased = result.phased_schedule
        totals: dict[int, WorkVector] = {}
        for phase in phased.phases:
            for site in phase.sites:
                if site.is_empty():
                    continue
                load = site.load_vector()
                prev = totals.get(site.index)
                totals[site.index] = load if prev is None else prev + load
        return tuple(totals[j] for j in sorted(totals))

    async def _place_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = self.admission.pop()
            if job is None:
                if self._intake_closed and self.admission.depth == 0:
                    return
                self._queue_event.clear()
                job = self.admission.pop()
                if job is None:
                    if self._intake_closed and self.admission.depth == 0:
                        return
                    await self._queue_event.wait()
                    continue
            pressure = self.admission.queued + self.executor.running_count
            degree = self.governor.degree(pressure)
            with current_tracer().span(
                "serve_place", job=job.job_id, degree=degree
            ) as span:
                result = self._schedule_template(job.template, degree)
                loads = self._footprint(result)
                if span is not None:
                    span.attributes["sites"] = len(loads)
            while not self.pool.has_capacity(len(loads)):
                self._capacity_event.clear()
                if self.pool.has_capacity(len(loads)):
                    break
                await self._capacity_event.wait()
            name = f"q{job.job_id}"
            now = loop.time()
            hosts = self.pool.install(name, loads)
            self.executor.launch(name, result.response_time, hosts, now)
            record = self.records[job.job_id]
            record.started = now
            record.degree = degree
            record.sites = len(loads)
            record.base_response = result.response_time
            if self.telemetry is not None:
                self.telemetry.on_placed(name, record.slo, hosts, now, degree)

    # ------------------------------------------------------------------
    # Completion path (called synchronously by the executor)
    # ------------------------------------------------------------------
    def _on_complete(self, name: str, finished_at: float) -> None:
        job_id = int(name[1:])
        with current_tracer().span("serve_complete", job=job_id):
            self.pool.retire(name)
        self.metrics.count(COUNTER_QUERIES_COMPLETED)
        record = self.records[job_id]
        record.finished = finished_at
        record.outcome = "completed"
        self._finished_at = max(self._finished_at, finished_at)
        if self.telemetry is not None:
            self.telemetry.on_completed(
                name, record.slo, finished_at - record.submitted, finished_at
            )
        future = self._futures.get(job_id)
        if future is not None and not future.done():
            future.set_result("completed")
        self._capacity_event.set()

    # ------------------------------------------------------------------
    # Elastic scaling (the config's capacity-event script)
    # ------------------------------------------------------------------
    async def _apply_capacity_events(self) -> None:
        loop = asyncio.get_running_loop()
        for at, site, capacity in sorted(self.config.capacity_events):
            delay = at - loop.time()
            if delay > 0.0:
                await asyncio.sleep(delay)
            # The pool's repair path counts sites_resized into the
            # recorder, so no extra count here.
            self.pool.set_capacity(site, capacity)
            # A capacity change is a rate event, exactly like a launch or
            # a retirement: wake the fluid race so the next interval runs
            # at the new speeds.
            self.executor.notify_rates_changed()

    # ------------------------------------------------------------------
    # Load generation
    # ------------------------------------------------------------------
    async def _generate_open(self, factory: JobFactory) -> None:
        loop = asyncio.get_running_loop()
        spec = self.config.workload
        rng = random.Random(spec.seed * 1_000_003)
        while True:
            now = loop.time()
            gap = rng.expovariate(spec.rate * diurnal_factor(now, spec))
            await asyncio.sleep(gap)
            now = loop.time()
            if now >= spec.duration:
                return
            self.submit(factory.job(now))

    async def _client(self, factory: JobFactory, index: int) -> None:
        loop = asyncio.get_running_loop()
        spec = self.config.workload
        rng = random.Random(spec.seed * 1_000_003 + 7 * (index + 1))
        while True:
            if spec.think_mean > 0.0:
                await asyncio.sleep(rng.expovariate(1.0 / spec.think_mean))
            now = loop.time()
            if now >= spec.duration:
                return
            outcome = self.submit(factory.job(now, client=index))
            await outcome

    async def _generate(self) -> None:
        factory = JobFactory(self.config.workload)
        if self.config.workload.arrival is ArrivalMode.OPEN:
            await self._generate_open(factory)
        else:
            clients = [
                asyncio.ensure_future(self._client(factory, i))
                for i in range(self.config.workload.clients)
            ]
            await asyncio.gather(*clients)

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        self._queue_event = asyncio.Event()
        self._capacity_event = asyncio.Event()
        self.admission.on_available = self._queue_event.set
        with current_tracer().span(
            "serve",
            algorithm=self.config.algorithm,
            p=self.config.p,
            arrival=self.config.workload.arrival.value,
            seed=self.config.workload.seed,
        ):
            placer = asyncio.ensure_future(self._place_loop())
            runner = asyncio.ensure_future(self.executor.run())
            resizer = (
                asyncio.ensure_future(self._apply_capacity_events())
                if self.config.capacity_events
                else None
            )
            # The sampler is strictly read-only, so starting (and later
            # cancelling) it cannot change any virtual-time result.
            sampler = (
                asyncio.ensure_future(self.telemetry.run())
                if self.telemetry is not None
                else None
            )
            await self._generate()
            self._intake_closed = True
            self.admission.drain_intake()
            self._queue_event.set()
            await placer
            if resizer is not None:
                await resizer
            self.executor.stop_when_idle()
            await runner
            if sampler is not None:
                sampler.cancel()
                try:
                    await sampler
                except asyncio.CancelledError:
                    pass

    def run(self) -> ServiceReport:
        """Execute the whole workload; returns the finished report."""
        started = time.perf_counter()
        with self.metrics.timer(TIMER_SERVE):
            run_virtual(self._main())
        wall = time.perf_counter() - started
        if self.telemetry is not None:
            completed = sum(
                1 for r in self.records.values() if r.outcome == "completed"
            )
            elapsed = max(self.config.workload.duration, self._finished_at)
            self.telemetry.finish(elapsed=elapsed, completed=completed)
        return ServiceReport(
            config=self.config,
            records=[self.records[k] for k in sorted(self.records)],
            metrics=self.metrics,
            degree_histogram=dict(self.governor.chosen),
            admission_decisions=dict(self.admission.decisions),
            promoted=self.admission.promoted,
            placement_scans=self.pool.placement_scans,
            busy_site_seconds=self.executor.busy_site_seconds,
            query_seconds=self.executor.query_seconds,
            finished_at=self._finished_at,
            wall_seconds=wall,
            sites_resized=self.pool.resizes,
        )
