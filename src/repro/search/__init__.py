"""Schedule-aware plan search (ROADMAP item 2).

The paper treats parallelization as a phase *after* conventional plan
selection (§1); with the fast kernels of PR2/PR6 the scheduler is cheap
enough to sit *inside* plan search as the cost model.  This package
provides the deterministic searcher:

* :mod:`repro.search.canonical` — structural plan hashing and the
  plan ↔ payload codec (the dedupe key, the score-cache key and the
  winner-schedule key are the same canonical-JSON bytes);
* :mod:`repro.search.enumerator` — exhaustive connected-subset DP for
  small join graphs, seeded greedy/mutation moves for large ones;
* :mod:`repro.search.screen` — batched, provably valid response-time
  lower bounds (``lower_bounds_batch``) pruning dominated candidates
  before a schedule is ever computed;
* :mod:`repro.search.score` — TREESCHEDULE as the objective function,
  memoized through the content-addressed artifact store and fanned out
  over :class:`~repro.experiments.parallel.ParallelRunner` workers;
* :mod:`repro.search.pareto` — ε-approximate Pareto frontiers over
  (response time, total work, max per-site load);
* :mod:`repro.search.search` — the orchestrator,
  :func:`~repro.search.search.search_plans`.

Winners are bit-identical at any worker count and with the store
disabled, cold, or warm.
"""

from repro.search.canonical import (
    canonical_plan,
    catalog_from_payload,
    plan_from_payload,
    plan_key,
    plan_payload,
)
from repro.search.enumerator import (
    count_exhaustive_plans,
    enumerate_exhaustive_plans,
    greedy_plan,
    mutate_plan,
    random_plan,
)
from repro.search.pareto import epsilon_dominates, epsilon_pareto_front
from repro.search.score import (
    CandidatePoint,
    candidate_point,
    evaluate_candidate,
    max_site_load,
    schedule_candidate,
)
from repro.search.screen import ScreenContext, candidate_lower_bounds
from repro.search.search import (
    PlanSearchResult,
    PlanSearchStats,
    ScoredPlan,
    search_plans,
)

__all__ = [
    "plan_payload",
    "plan_from_payload",
    "plan_key",
    "canonical_plan",
    "catalog_from_payload",
    "count_exhaustive_plans",
    "enumerate_exhaustive_plans",
    "greedy_plan",
    "random_plan",
    "mutate_plan",
    "ScreenContext",
    "candidate_lower_bounds",
    "CandidatePoint",
    "candidate_point",
    "evaluate_candidate",
    "schedule_candidate",
    "max_site_load",
    "epsilon_dominates",
    "epsilon_pareto_front",
    "ScoredPlan",
    "PlanSearchStats",
    "PlanSearchResult",
    "search_plans",
]
