"""Schedule-aware plan search: TREESCHEDULE as the optimizer cost model.

:func:`search_plans` replaces blind plan sampling with a deterministic
search whose scoring function is the scheduled response time:

1. **Enumerate** (``plan_enumerate`` span).  Small plan spaces are
   enumerated exhaustively by the connected-subset DP
   (:mod:`repro.search.enumerator`); larger ones run a seeded
   beam-style local search (greedy + random starts, subtree-reshape
   mutations) driven by :class:`random.Random` — no numpy required.
2. **Dedupe.**  Candidates are collapsed by canonical plan hash
   (:func:`~repro.search.canonical.plan_key`) before anything is
   scheduled.
3. **Screen** (``plan_screen`` span).  Every pending candidate gets a
   valid response-time lower bound from the batched screen
   (:mod:`repro.search.screen` / ``lower_bounds_batch``); candidates
   whose bound exceeds the incumbent's exact score are pruned without
   ever being scheduled.
4. **Score** (``plan_score`` spans).  Survivors are scheduled in
   fixed-size chunks through a
   :class:`~repro.experiments.parallel.ParallelRunner` — bit-identical
   winners at any worker count — with per-candidate objective payloads
   memoized in the content-addressed artifact store, so a repeated
   search schedules zero cold candidates.

Determinism contract: the returned winner, ranking and frontier are
byte-identical for any ``workers`` count and with the store disabled,
cold, or warm.  Chunk boundaries and the incumbent-update sequence are
fixed by candidate order (never by completion order), bounds are exact
functions of plan structure, and a pruned candidate's true score
provably exceeds the incumbent, so pruning can never change the winner.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.cloning import DEFAULT_COORDINATOR_POLICY, CoordinatorPolicy
from repro.core.cluster import ClusterSpec
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import ConvexCombinationOverlap, OverlapModel
from repro.cost.params import PAPER_PARAMETERS, SystemParameters
from repro.engine.metrics import (
    COUNTER_PLAN_STORE_HITS,
    COUNTER_PLAN_STORE_MISSES,
    COUNTER_PLANS_DEDUPED,
    COUNTER_PLANS_ENUMERATED,
    COUNTER_PLANS_PRUNED,
    COUNTER_PLANS_SCORED,
    COUNTER_POINT_STORE_HITS,
    COUNTER_POINT_STORE_MISSES,
    TIMER_PLAN_SEARCH,
    MetricsRecorder,
)
from repro.engine.result import ScheduleResult
from repro.exceptions import ConfigurationError
from repro.experiments.parallel import ParallelRunner
from repro.obs.tracer import current_tracer
from repro.plans.join_tree import PlanNode
from repro.plans.query_graph import QueryGraph
from repro.plans.relations import Catalog
from repro.search.canonical import plan_key
from repro.search.enumerator import (
    count_exhaustive_plans,
    enumerate_exhaustive_plans,
    greedy_plan,
    mutate_plan,
    random_plan,
)
from repro.search.pareto import epsilon_pareto_front
from repro.search.score import (
    CandidatePoint,
    candidate_point,
    evaluate_candidate,
    schedule_candidate,
)
from repro.search.screen import ScreenContext, candidate_lower_bounds
from repro.store import ArtifactStore, resolve_store

__all__ = [
    "ScoredPlan",
    "PlanSearchStats",
    "PlanSearchResult",
    "search_plans",
]

#: Candidates scheduled per runner round.  A fixed chunk (independent of
#: the worker count) is what pins the incumbent-update sequence — and
#: therefore the prune set — for any ``workers`` value.
DEFAULT_CHUNK_SIZE = 16


@dataclass(frozen=True)
class ScoredPlan:
    """One scored candidate: canonical key, plan, and its objectives."""

    key: str
    plan: PlanNode = field(repr=False)
    response_time: float
    num_phases: int
    total_work: float
    max_site_load: float

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(response time, total work, max per-site load) — all minimized."""
        return (self.response_time, self.total_work, self.max_site_load)


@dataclass(frozen=True)
class PlanSearchStats:
    """Where the candidates went: the search's accounting.

    ``enumerated`` counts every generated candidate (duplicates
    included); ``unique`` the distinct structures after canonical-hash
    dedupe; ``pruned`` the candidates eliminated by the lower-bound
    screen; ``scored`` the exact schedules obtained, of which
    ``store_hits`` came from the artifact store (``store_misses`` were
    scheduled cold — a warm re-search reports zero here).
    """

    enumerated: int
    unique: int
    pruned: int
    scored: int
    store_hits: int
    store_misses: int
    exhaustive: bool

    @property
    def prune_rate(self) -> float:
        """Fraction of unique candidates eliminated without scheduling."""
        return self.pruned / self.unique if self.unique else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of exact scores served from the store."""
        lookups = self.store_hits + self.store_misses
        return self.store_hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class PlanSearchResult:
    """Outcome of one :func:`search_plans` call.

    ``candidates`` ranks every *scored* plan (best first); pruned
    candidates carry no exact score and do not appear.  ``frontier`` is
    the ε-approximate Pareto frontier in objective-lexicographic order
    (empty unless the many-objective mode ran).
    """

    winner: ScoredPlan
    schedule: ScheduleResult
    candidates: tuple[ScoredPlan, ...]
    frontier: tuple[ScoredPlan, ...]
    stats: PlanSearchStats

    @property
    def best(self) -> ScoredPlan:
        """Alias of :attr:`winner`."""
        return self.winner


def search_plans(
    graph: QueryGraph,
    catalog: Catalog,
    *,
    p: int,
    params: SystemParameters | None = None,
    f: float = 0.7,
    epsilon: float = 0.5,
    shelf: str = "min",
    comm: CommunicationModel | None = None,
    overlap: OverlapModel | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    seed: int = 0,
    workers: int = 1,
    store: ArtifactStore | None = None,
    metrics: MetricsRecorder | None = None,
    max_exhaustive: int = 512,
    init_samples: int = 16,
    beam_width: int = 6,
    generations: int = 3,
    mutations_per_parent: int = 4,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    prune: bool = True,
    pareto: bool = False,
    pareto_eps: float = 0.05,
    cluster: ClusterSpec | None = None,
) -> PlanSearchResult:
    """Search the bushy-plan space of one tree query, scheduler-scored.

    Parameters
    ----------
    graph, catalog:
        The query.
    p, params, f, epsilon, shelf:
        Scheduling context; ``comm`` / ``overlap`` default to the models
        derived from ``params`` / ``epsilon`` (pass explicit models to
        override, as :func:`~repro.experiments.plan_selection.select_best_plan`
        does).
    seed:
        Drives the local-search regime's random starts and mutations
        (:class:`random.Random`; ignored by the exhaustive regime).
    workers, store, metrics:
        Parallel-runner fan-out, artifact-store memoization, and
        instrumentation.  None of these changes the returned plans.
    max_exhaustive:
        Largest plan-space size enumerated exhaustively; bigger spaces
        use the seeded local search.
    init_samples, beam_width, generations, mutations_per_parent:
        Local-search shape: random starts beside the greedy seed, then
        ``generations`` rounds keeping the best ``beam_width`` scored
        plans and re-shaping each with ``mutations_per_parent`` moves.
    chunk_size:
        Candidates scheduled per runner round (fixed, so the incumbent /
        prune sequence is worker-count-independent).
    prune:
        Enable the lower-bound screen (single-objective mode only).
    pareto, pareto_eps:
        Many-objective mode: score every unique candidate (pruning off —
        an incumbent screen on response time would discard low-work
        plans) and return the ε-approximate Pareto frontier over
        (response time, total work, max per-site load).
    cluster:
        Optional heterogeneous cluster (``cluster.p`` must equal ``p``).
        Candidates are scored on the capacity-aware TREESCHEDULE and the
        prune screen relaxes its bounds by the total / fastest capacity
        so pruning stays winner-invariant.  Uniform specs normalize to
        ``None`` — homogeneous searches are byte- and cache-identical
        however the site count was spelled.
    """
    if p < 1:
        raise ConfigurationError(f"number of sites must be >= 1, got {p}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if cluster is not None:
        if cluster.p != p:
            raise ConfigurationError(
                f"cluster spec describes {cluster.p} sites but p={p}"
            )
        if cluster.is_uniform():
            cluster = None
    if params is None:
        params = PAPER_PARAMETERS
    if comm is None:
        comm = params.communication_model()
    if overlap is None:
        overlap = ConvexCombinationOverlap(epsilon)
    prune = prune and not pareto

    started = time.perf_counter()
    rec = MetricsRecorder()
    runner_rec = MetricsRecorder()
    runner = ParallelRunner(workers, metrics=runner_rec, store=store)
    resolved_store = resolve_store(store)
    ctx = ScreenContext(
        p=p,
        params=params,
        comm=comm,
        overlap=overlap,
        policy=policy,
        capacities=None if cluster is None else cluster.capacities(),
    )
    rng = random.Random(seed)

    scored: dict[str, ScoredPlan] = {}
    seen: set[str] = set()
    state = {"incumbent": None, "pruned": 0, "enumerated": 0}

    def point_of(plan: PlanNode) -> CandidatePoint:
        return candidate_point(
            plan, p=p, f=f, shelf=shelf, params=params, comm=comm,
            overlap=overlap, cluster=cluster,
        )

    def dedupe(plans: list[PlanNode]) -> list[tuple[str, PlanNode]]:
        """First occurrence per canonical key, input order preserved."""
        state["enumerated"] += len(plans)
        fresh: list[tuple[str, PlanNode]] = []
        for plan in plans:
            key = plan_key(plan)
            if key in seen:
                continue
            seen.add(key)
            fresh.append((key, plan))
        return fresh

    def score_round(fresh: list[tuple[str, PlanNode]]) -> None:
        """Screen, order, chunk-schedule; updates ``scored``/incumbent."""
        if not fresh:
            return
        if prune:
            with current_tracer().span("plan_screen", candidates=len(fresh)):
                bounds = candidate_lower_bounds([plan for _, plan in fresh], ctx)
            order = sorted(
                ((lb, key, plan) for (key, plan), lb in zip(fresh, bounds)),
                key=lambda item: (item[0], item[1]),
            )
        else:
            order = [(0.0, key, plan) for key, plan in sorted(fresh)]
        while order:
            if prune and state["incumbent"] is not None:
                survivors = [
                    item for item in order if item[0] <= state["incumbent"]
                ]
                state["pruned"] += len(order) - len(survivors)
                order = survivors
            chunk = order[:chunk_size]
            order = order[chunk_size:]
            if not chunk:
                break
            values = runner.run(
                [point_of(plan) for _, _, plan in chunk],
                evaluate=evaluate_candidate,
            )
            for (_, key, plan), value in zip(chunk, values):
                entry = ScoredPlan(
                    key=key,
                    plan=plan,
                    response_time=float(value["response_time"]),
                    num_phases=int(value["num_phases"]),
                    total_work=float(value["total_work"]),
                    max_site_load=float(value["max_site_load"]),
                )
                scored[key] = entry
                if (
                    state["incumbent"] is None
                    or entry.response_time < state["incumbent"]
                ):
                    state["incumbent"] = entry.response_time

    with current_tracer().span(
        "plan_search", p=p, f=f, workers=workers, pareto=pareto
    ):
        space = count_exhaustive_plans(graph, limit=max_exhaustive)
        exhaustive = space <= max_exhaustive
        with current_tracer().span(
            "plan_enumerate", exhaustive=exhaustive, space=space
        ):
            if exhaustive:
                initial = enumerate_exhaustive_plans(
                    graph, catalog, limit=max_exhaustive
                )
            else:
                initial = [greedy_plan(graph, catalog)]
                initial += [
                    random_plan(graph, catalog, rng) for _ in range(init_samples)
                ]
        score_round(dedupe(initial))

        if not exhaustive:
            for _ in range(generations):
                parents = sorted(
                    scored.values(),
                    key=lambda sp: (sp.response_time, sp.key),
                )[:beam_width]
                children = [
                    mutate_plan(parent.plan, graph, catalog, rng)
                    for parent in parents
                    for _ in range(mutations_per_parent)
                ]
                fresh = dedupe(children)
                if not fresh:
                    break
                score_round(fresh)

        if not scored:
            raise ConfigurationError(
                "plan search scored no candidates (empty plan space?)"
            )
        winner = min(scored.values(), key=lambda sp: (sp.response_time, sp.key))
        schedule, winner_cached = schedule_candidate(
            point_of(winner.plan), store=resolved_store
        )

        frontier: tuple[ScoredPlan, ...] = ()
        if pareto:
            front_keys = epsilon_pareto_front(
                [(sp.key, sp.objectives) for sp in scored.values()],
                pareto_eps,
            )
            frontier = tuple(scored[key] for key in front_keys)

    ranking = tuple(
        sorted(scored.values(), key=lambda sp: (sp.response_time, sp.key))
    )
    store_hits = int(runner_rec.counters.get(COUNTER_POINT_STORE_HITS, 0.0))
    store_misses = int(runner_rec.counters.get(COUNTER_POINT_STORE_MISSES, 0.0))
    if resolved_store is not None:
        if winner_cached:
            store_hits += 1
        else:
            store_misses += 1
    stats = PlanSearchStats(
        enumerated=state["enumerated"],
        unique=len(seen),
        pruned=state["pruned"],
        scored=len(scored),
        store_hits=store_hits,
        store_misses=store_misses,
        exhaustive=exhaustive,
    )

    rec.count(COUNTER_PLANS_ENUMERATED, stats.enumerated)
    rec.count(COUNTER_PLANS_DEDUPED, stats.enumerated - stats.unique)
    rec.count(COUNTER_PLANS_PRUNED, stats.pruned)
    rec.count(COUNTER_PLANS_SCORED, stats.scored)
    if resolved_store is not None:
        rec.count(COUNTER_PLAN_STORE_HITS, stats.store_hits)
        rec.count(COUNTER_PLAN_STORE_MISSES, stats.store_misses)
    rec.timers[TIMER_PLAN_SEARCH] = time.perf_counter() - started
    for name, value in rec.counters.items():
        schedule.instrumentation.counters[name] = (
            schedule.instrumentation.counters.get(name, 0.0) + value
        )
    schedule.instrumentation.timers.update(rec.timers)
    if metrics is not None:
        metrics.merge(rec)

    return PlanSearchResult(
        winner=winner,
        schedule=schedule,
        candidates=ranking,
        frontier=frontier,
        stats=stats,
    )
