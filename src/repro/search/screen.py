"""Batched candidate lower bounds: prune plans before scheduling them.

For each candidate plan the screen computes a *valid* lower bound on its
TREESCHEDULE response time from two sides, mirroring the Section 7 bound
``LB = max{ l(S)/P, h }`` (:mod:`repro.core.bounds`):

* **Congestion.**  The total work vector of an operator is componentwise
  non-decreasing in its degree of parallelism
  (:func:`~repro.core.cloning.total_work_vector`), so summing the
  ``n = 1`` vectors over all operators under-estimates the work any
  actual parallelization must push through the ``P`` sites.  The
  ``l(S)/P`` side is evaluated for all candidates in one call to
  :func:`repro.core.batch.lower_bounds_batch` — the numpy reduction
  above ``NUMPY_CUTOVER``, the exact pure-Python fold below it (and
  always, when numpy is absent).

* **Critical path.**  The response time is the sum of synchronized phase
  makespans; an operator's phase lasts at least
  ``t_min(op) = min_N T_par(op, N)`` (Equation (1) minimized over all
  degrees ``1..P``), and a blocking edge forces its consumer into a
  strictly later phase.  A longest-path DP over the operator DAG carries
  ``(closed, open)`` per operator — the sum of finished pipeline
  segments and the running segment's max — and ``h`` is the best
  ``closed + open`` anywhere.  Both the makespan argument per phase and
  the phase-disjointness of consecutive segments are exact, so
  ``h <= response_time`` always holds: *a pruned candidate can never
  beat the incumbent*, which is what keeps pruning winner-invariant.

``t_min`` is memoized on the operator's ``(work, data volume)``
signature: repeated subtrees across candidates (ubiquitous — the DP
shares subsets, mutations keep most of a plan) screen for free.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.batch import lower_bounds_batch
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    parallel_time,
    total_work_vector,
)
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.cost.annotate import compute_operator_spec
from repro.cost.params import SystemParameters
from repro.plans.join_tree import PlanNode
from repro.plans.operator_tree import expand_plan
from repro.plans.physical_ops import EdgeKind

__all__ = ["ScreenContext", "candidate_lower_bounds"]


class ScreenContext:
    """Scheduling context plus the cross-candidate ``t_min`` memo.

    One context serves one ``(p, params, comm, overlap, policy)``
    setting for the whole search; reusing it across scoring rounds is
    what makes repeated operator signatures near-free to screen.
    """

    def __init__(
        self,
        *,
        p: int,
        params: SystemParameters,
        comm: CommunicationModel,
        overlap: OverlapModel,
        policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
        capacities: "Sequence[float] | None" = None,
    ) -> None:
        self.p = p
        self.params = params
        self.comm = comm
        self.overlap = overlap
        self.policy = policy
        #: heterogeneous relaxation terms (``None`` keeps the historical
        #: homogeneous bound byte-for-byte): congestion divides by the
        #: total capacity instead of ``p``, the critical path by the
        #: fastest site's speed — both sides stay valid lower bounds.
        self.total_capacity = (
            None if capacities is None else float(sum(capacities))
        )
        self.max_capacity = None if capacities is None else max(capacities)
        self._t_min: dict[tuple, float] = {}

    def t_min(self, spec) -> float:
        """``min_N T_par(spec, N)`` over ``1..p``, memoized by signature."""
        signature = (spec.work.components, spec.data_volume)
        cached = self._t_min.get(signature)
        if cached is not None:
            return cached
        value = min(
            parallel_time(spec, n, self.comm, self.overlap, self.policy)
            for n in range(1, self.p + 1)
        )
        self._t_min[signature] = value
        return value


def _critical_path(op_tree, specs, ctx: ScreenContext) -> float:
    """The segment-DP lower bound ``h`` for one candidate's operator DAG."""
    best: dict = {}
    h = 0.0
    for op in op_tree.operators:
        t = ctx.t_min(specs[op.name])
        closed, open_max = 0.0, t
        for producer in op_tree.producers(op, EdgeKind.BLOCKING):
            s, m = best[producer]
            if s + m + t > closed + open_max or (
                s + m + t == closed + open_max and s + m > closed
            ):
                closed, open_max = s + m, t
        for producer in op_tree.producers(op, EdgeKind.PIPELINE):
            s, m = best[producer]
            cand = (s, max(m, t))
            if cand[0] + cand[1] > closed + open_max or (
                cand[0] + cand[1] == closed + open_max and cand[0] > closed
            ):
                closed, open_max = cand
        best[op] = (closed, open_max)
        h = max(h, closed + open_max)
    return h


def candidate_lower_bounds(
    plans: Sequence[PlanNode], ctx: ScreenContext
) -> list[float]:
    """A valid response-time lower bound per candidate plan.

    Expands and cost-annotates each candidate (detached — the plan trees
    are not modified), then combines the batched congestion side with
    the per-candidate critical-path side.  Bounds are deterministic
    functions of the plan structure and the context, independent of
    worker count and store state.
    """
    if not plans:
        return []
    groups = []
    h_values = []
    d = None
    for plan in plans:
        op_tree = expand_plan(plan)
        specs = {
            op.name: compute_operator_spec(op, op_tree, ctx.params)
            for op in op_tree.operators
        }
        totals = [
            total_work_vector(spec, 1, ctx.comm, ctx.policy)
            for spec in specs.values()
        ]
        if d is None:
            d = totals[0].d
        groups.append(totals)
        h = _critical_path(op_tree, specs, ctx)
        if ctx.max_capacity is not None:
            h /= ctx.max_capacity
        h_values.append(h)
    assert d is not None
    return lower_bounds_batch(
        groups, h_values, ctx.p, d, total_capacity=ctx.total_capacity
    )
