"""Deterministic bushy-plan enumeration over tree query graphs.

Two regimes, selected by the candidate count:

* **Exhaustive DP** (small graphs).  A bushy plan for a connected vertex
  set ``S`` of a tree query graph is a join of the two components
  obtained by cutting one edge of the subtree induced by ``S`` — cutting
  is the inverse of the edge contraction
  :func:`~repro.plans.join_tree.random_bushy_plan` performs.  The DP
  over connected subsets therefore enumerates *every* bushy shape the
  sampler can reach (under the same smaller-side-builds orientation
  rule), sharing subplans between candidates.  A counting pass
  (:func:`count_exhaustive_plans`) runs first so enumeration is only
  materialized when the space fits under the cap — a chain of ``n``
  relations has Catalan(``n-1``) shapes, so the count grows fast.

* **Seeded local search** (large graphs).  A deterministic greedy start
  (:func:`greedy_plan`: always contract the edge with the smallest
  joined cardinality) plus :func:`random_plan` /
  :func:`mutate_plan` moves driven by a :class:`random.Random` — the
  stdlib generator, so the search runs identically with or without
  numpy and under any ``PYTHONHASHSEED`` (all tie-breaks go through
  sorted edge lists, never set/dict iteration order).

Every public function returns plans in a deterministic order; callers
dedupe by :func:`~repro.search.canonical.plan_key`.
"""

from __future__ import annotations

import random
from collections import deque

import networkx as nx

from repro.exceptions import PlanStructureError
from repro.plans.join_tree import BaseRelationNode, JoinNode, PlanNode
from repro.plans.query_graph import QueryGraph
from repro.plans.relations import Catalog
from repro.search.canonical import canonical_plan

__all__ = [
    "count_exhaustive_plans",
    "enumerate_exhaustive_plans",
    "greedy_plan",
    "random_plan",
    "mutate_plan",
]


def _adjacency(graph: QueryGraph) -> dict[str, list[str]]:
    """Sorted adjacency lists of the query tree (deterministic walks)."""
    adj: dict[str, list[str]] = {name: [] for name in sorted(graph.relations)}
    for a, b in sorted(graph.joins):
        adj[a].append(b)
        adj[b].append(a)
    return {name: sorted(neighbors) for name, neighbors in adj.items()}


def _component(
    adj: dict[str, list[str]],
    subset: frozenset[str],
    start: str,
    blocked: tuple[str, str],
) -> frozenset[str]:
    """Vertices of ``subset`` reachable from ``start`` avoiding one edge."""
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in adj[node]:
            if neighbor not in subset or neighbor in seen:
                continue
            if {node, neighbor} == set(blocked):
                continue
            seen.add(neighbor)
            queue.append(neighbor)
    return frozenset(seen)


def _splits(
    adj: dict[str, list[str]], subset: frozenset[str]
) -> list[tuple[frozenset[str], frozenset[str]]]:
    """All edge-cut splits of a connected subset, in sorted edge order.

    For each induced edge ``(u, v)`` (``u < v``) the cut yields the
    component containing ``u`` first — the orientation convention the
    plan construction's tie-break relies on.
    """
    edges = sorted(
        (u, v)
        for u in subset
        for v in adj[u]
        if v in subset and u < v
    )
    out = []
    for u, v in edges:
        left = _component(adj, subset, u, (u, v))
        out.append((left, subset - left))
    return out


def count_exhaustive_plans(graph: QueryGraph, *, limit: int) -> int:
    """Number of distinct bushy plans, saturating at ``limit + 1``.

    Counts the DP's plan space without materializing it; a return value
    of ``limit + 1`` means "more than ``limit``" (the recursion aborts
    early), so callers can gate exhaustive enumeration cheaply.
    """
    adj = _adjacency(graph)
    memo: dict[frozenset[str], int] = {}
    cap = limit + 1

    def count(subset: frozenset[str]) -> int:
        if len(subset) == 1:
            return 1
        if subset in memo:
            return memo[subset]
        total = 0
        for left, right in _splits(adj, subset):
            total += count(left) * count(right)
            if total >= cap:
                total = cap
                break
        memo[subset] = total
        return total

    return count(frozenset(graph.relations))


def enumerate_exhaustive_plans(
    graph: QueryGraph, catalog: Catalog, *, limit: int
) -> list[PlanNode]:
    """Every distinct bushy plan of ``graph``, canonically labelled.

    Uses the smaller-side-builds orientation (ties: the component of the
    cut edge's smaller-named endpoint builds).  Subplans are shared
    inside the DP; each *candidate* is materialized as an independent
    canonical copy, so downstream annotation never aliases trees.

    Raises
    ------
    PlanStructureError
        If the plan space exceeds ``limit`` (check
        :func:`count_exhaustive_plans` first).
    """
    total = count_exhaustive_plans(graph, limit=limit)
    if total > limit:
        raise PlanStructureError(
            f"plan space exceeds the exhaustive cap ({limit}); "
            "use the local-search regime"
        )
    adj = _adjacency(graph)
    memo: dict[frozenset[str], list[PlanNode]] = {}

    def plans(subset: frozenset[str]) -> list[PlanNode]:
        if len(subset) == 1:
            (name,) = subset
            return [BaseRelationNode(catalog.get(name))]
        if subset in memo:
            return memo[subset]
        out: list[PlanNode] = []
        for left_set, right_set in _splits(adj, subset):
            for left in plans(left_set):
                for right in plans(right_set):
                    out.append(_join(left, right, "X"))
        memo[subset] = out
        return out

    roots = plans(frozenset(graph.relations))
    return [canonical_plan(plan) for plan in roots]


def _join(left: PlanNode, right: PlanNode, join_id: str) -> JoinNode:
    """Join two fragments under the smaller-side-builds convention.

    ``left`` must be the fragment of the canonical edge's smaller-named
    endpoint — on a cardinality tie it builds, matching
    :func:`~repro.plans.join_tree.random_bushy_plan`'s tie-break.
    """
    if left.output_tuples <= right.output_tuples:
        build, probe = left, right
    else:
        build, probe = right, left
    return JoinNode(join_id, build, probe)


def _contract(
    names: list[str],
    edges: list[tuple[str, str]],
    catalog: Catalog,
    pick: "callable",
) -> PlanNode:
    """Shared contraction loop: ``pick(edges)`` chooses each next edge.

    Mirrors :func:`~repro.plans.join_tree.random_bushy_plan` exactly
    (sorted canonical edge list, smaller-side-builds, contraction keeps
    the first endpoint) but takes any edge-choice rule, which is how the
    greedy start and the stdlib-seeded sampler share one body.
    """
    fragments: dict[str, PlanNode] = {
        name: BaseRelationNode(catalog.get(name)) for name in names
    }
    contracted = nx.Graph()
    contracted.add_nodes_from(names)
    contracted.add_edges_from(edges)
    counter = 0
    while contracted.number_of_edges() > 0:
        candidates = sorted(tuple(sorted(e)) for e in contracted.edges)
        u, v = pick(candidates, fragments)
        join = _join(fragments[u], fragments[v], f"X{counter}")
        counter += 1
        contracted = nx.contracted_nodes(contracted, u, v, self_loops=False)
        fragments[u] = join
        del fragments[v]
    roots = [fragments[name] for name in sorted(fragments)]
    if len(roots) != 1:
        raise PlanStructureError(
            f"contraction left {len(roots)} fragments; graph not connected?"
        )
    return roots[0]


def greedy_plan(graph: QueryGraph, catalog: Catalog) -> PlanNode:
    """Deterministic greedy seed: contract the cheapest edge first.

    "Cheapest" is the smallest joined output cardinality, ties broken by
    the canonical edge order — a classic minimum-intermediate-result
    heuristic that gives the local search a strong, reproducible start.
    """

    def pick(candidates, fragments):
        return min(
            candidates,
            key=lambda e: (
                max(fragments[e[0]].output_tuples, fragments[e[1]].output_tuples),
                e,
            ),
        )

    plan = _contract(sorted(graph.relations), sorted(graph.joins), catalog, pick)
    return canonical_plan(plan)


def random_plan(
    graph: QueryGraph, catalog: Catalog, rng: random.Random
) -> PlanNode:
    """One uniformly random bushy plan, driven by the stdlib generator.

    The same contraction process as
    :func:`~repro.plans.join_tree.random_bushy_plan`, but seeded with
    :class:`random.Random` so the search regime has no numpy dependency.
    """

    def pick(candidates, fragments):
        return candidates[rng.randrange(len(candidates))]

    plan = _contract(sorted(graph.relations), sorted(graph.joins), catalog, pick)
    return canonical_plan(plan)


def mutate_plan(
    plan: PlanNode,
    graph: QueryGraph,
    catalog: Catalog,
    rng: random.Random,
) -> PlanNode:
    """Re-shape one random join subtree of ``plan`` (a local-search move).

    Picks a join node uniformly at random, collects the base relations
    of its subtree (always a connected subset of the query tree — joins
    only ever merge adjacent fragments), rebuilds that subtree by random
    contraction of the induced subgraph, and splices it back.  Because a
    key-join subtree's output cardinality is the max over its leaves —
    shape-invariant — the ancestors' build/probe orientations stay
    valid.  Returns a canonical copy; the input plan is not modified.
    """
    joins = plan.joins()
    if not joins:
        return canonical_plan(plan)
    target = joins[rng.randrange(len(joins))]
    names = sorted(leaf.relation.name for leaf in target.leaves())
    member = set(names)
    induced = [
        (a, b) for a, b in sorted(graph.joins) if a in member and b in member
    ]
    replacement = _contract(names, induced, catalog, _random_pick(rng))

    def rebuild(node: PlanNode) -> PlanNode:
        if node is target:
            return replacement
        if isinstance(node, BaseRelationNode):
            return node
        assert isinstance(node, JoinNode)
        return JoinNode(
            node.join_id + "_",
            rebuild(node.build_side),
            rebuild(node.probe_side),
            method=node.method,
            materialize_output=node.materialize_output,
        )

    return canonical_plan(rebuild(plan))


def _random_pick(rng: random.Random):
    def pick(candidates, fragments):
        return candidates[rng.randrange(len(candidates))]

    return pick
