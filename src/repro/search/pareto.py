"""ε-approximate Pareto frontiers over plan objectives.

The many-objective mode follows the approximation-scheme idea of
"Approximation Schemes for Many-Objective Query Optimization" (see
PAPERS.md): instead of the exact Pareto frontier — which can be as large
as the candidate set — keep an *ε-cover*: a subset such that every
candidate is ε-dominated by some kept plan.  With ``eps = 0`` the cover
is exactly the set of non-dominated objective vectors.

All objectives are minimized and non-negative here (response time,
total work, max per-site load).  Construction is deterministic:
candidates are sorted lexicographically by objective vector with the
canonical plan key as the final tie-break, and a candidate is kept iff
no already-kept plan ε-dominates it.  Because a (weak) dominator always
sorts no later than what it dominates, the ``eps = 0`` pass provably
returns the exact frontier (first occurrence per objective vector).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError

__all__ = ["epsilon_dominates", "epsilon_pareto_front"]


def epsilon_dominates(
    a: Sequence[float], b: Sequence[float], eps: float = 0.0
) -> bool:
    """Does ``a`` ε-dominate ``b``?  (``a_i <= (1 + eps) * b_i`` for all i.)

    Weak dominance: equal vectors dominate each other, which is exactly
    what collapses objective-duplicates onto one representative.
    """
    if len(a) != len(b):
        raise ConfigurationError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    if eps < 0.0:
        raise ConfigurationError(f"eps must be >= 0, got {eps}")
    scale = 1.0 + eps
    return all(x <= scale * y for x, y in zip(a, b))


def epsilon_pareto_front(
    items: Sequence[tuple[str, tuple[float, ...]]], eps: float = 0.0
) -> list[str]:
    """Keys of an ε-cover of ``items`` (``(key, objectives)`` pairs).

    Guarantees:

    * **cover** — every input is ε-dominated by some returned item;
    * **determinism** — output depends only on the multiset of inputs
      (sorted by ``(objectives, key)``, first occurrence kept);
    * **exactness at zero** — ``eps = 0`` returns precisely the
      non-dominated objective vectors (one key per distinct vector).

    Returned keys are in objective-lexicographic order.
    """
    ordered = sorted(items, key=lambda item: (item[1], item[0]))
    kept: list[tuple[str, tuple[float, ...]]] = []
    for key, objectives in ordered:
        if any(
            epsilon_dominates(prev, objectives, eps) for _, prev in kept
        ):
            continue
        kept.append((key, objectives))
    return [key for key, _ in kept]
