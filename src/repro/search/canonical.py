"""Canonical plan form: structural hashing and the plan ↔ payload codec.

Two sampled bushy plans are *structurally identical* when they join the
same relations in the same tree shape with the same build/probe
orientation, join method and materialization flags — the ``join_id``
labels are bookkeeping, not structure.  :func:`plan_payload` maps a plan
to a nested plain-data form that deliberately omits the labels, and
:func:`plan_key` hashes that form through the artifact store's
canonical-JSON text, so the dedupe hash is the same bytes for the same
plan in any process, under any hash seed, on any machine.

:func:`plan_from_payload` rebuilds a :class:`~repro.plans.join_tree.PlanNode`
tree from a payload, assigning fresh ``join_id`` labels in post-order
(``J0`` is the deepest-leftmost join).  Round-tripping any plan through
the codec therefore yields its *canonical* copy
(:func:`canonical_plan`): same structure, deterministic labels —
whatever process, hash seed, or search move produced it.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.exceptions import PlanStructureError
from repro.plans.join_tree import BaseRelationNode, JoinMethod, JoinNode, PlanNode
from repro.plans.relations import Catalog, Relation
from repro.store import KIND_PLAN, canonical_json

#: Envelope version of the *plan identity* hash.  A plan key is a stable
#: name printed in reports and compared across runs, not a cache
#: address, so it deliberately pins its own version instead of tracking
#: :data:`repro.store.STORE_SCHEMA` — store-schema bumps must not
#: renumber plans.  (The candidate-score and winner-schedule cache keys
#: are derived separately and *do* follow the store schema.)
_PLAN_KEY_SCHEMA = "repro-store/1"

__all__ = [
    "plan_payload",
    "plan_from_payload",
    "plan_key",
    "canonical_plan",
    "catalog_from_payload",
]


def plan_payload(plan: PlanNode) -> dict[str, Any]:
    """The label-free plain-data form of ``plan`` (canonical-JSON-safe).

    Leaves carry the relation name and cardinality (so a payload is
    self-contained: cardinalities do not need a catalog to re-derive);
    joins carry method, materialization flag, and the two child payloads
    under ``"build"`` / ``"probe"``.  ``join_id`` labels are omitted —
    they are assigned canonically on rebuild.
    """
    if isinstance(plan, BaseRelationNode):
        return {
            "relation": plan.relation.name,
            "tuples": plan.relation.tuples,
        }
    if isinstance(plan, JoinNode):
        return {
            "method": plan.method.value,
            "materialize": plan.materialize_output,
            "build": plan_payload(plan.build_side),
            "probe": plan_payload(plan.probe_side),
        }
    raise PlanStructureError(f"unknown plan node type {type(plan).__name__}")


def plan_from_payload(payload: dict[str, Any]) -> PlanNode:
    """Rebuild a plan tree from :func:`plan_payload` output.

    Join ids are assigned in post-order (``J0``, ``J1``, ...), which is
    what makes the rebuilt tree canonical: two structurally identical
    plans rebuild to trees whose operator names match exactly.
    """
    counter = 0

    def build(node: dict[str, Any]) -> PlanNode:
        nonlocal counter
        if "relation" in node:
            return BaseRelationNode(
                Relation(name=node["relation"], tuples=int(node["tuples"]))
            )
        build_side = build(node["build"])
        probe_side = build(node["probe"])
        join = JoinNode(
            f"J{counter}",
            build_side,
            probe_side,
            method=JoinMethod(node["method"]),
            materialize_output=bool(node.get("materialize", False)),
        )
        counter += 1
        return join

    if not isinstance(payload, dict):
        raise PlanStructureError(
            f"plan payload must be a mapping, got {type(payload).__name__}"
        )
    return build(payload)


def plan_key(plan: PlanNode) -> str:
    """Content key of the plan's structure (labels excluded).

    Reuses the store's canonical-JSON text under the
    :data:`~repro.store.KIND_PLAN` kind with the pinned
    :data:`_PLAN_KEY_SCHEMA` envelope, so equal structures hash equal in
    any process, under any ``PYTHONHASHSEED``, on any machine — and keep
    hashing equal across store-schema bumps.
    """
    envelope = {
        "schema": _PLAN_KEY_SCHEMA,
        "kind": KIND_PLAN,
        "payload": plan_payload(plan),
    }
    return hashlib.sha256(canonical_json(envelope).encode("utf-8")).hexdigest()


def canonical_plan(plan: PlanNode) -> PlanNode:
    """A fresh copy of ``plan`` with canonical post-order join ids."""
    return plan_from_payload(plan_payload(plan))


def catalog_from_payload(payload: dict[str, Any]) -> Catalog:
    """The minimal catalog covering every leaf relation of a payload."""
    relations: dict[str, Relation] = {}

    def walk(node: dict[str, Any]) -> None:
        if "relation" in node:
            name = node["relation"]
            rel = Relation(name=name, tuples=int(node["tuples"]))
            if name in relations and relations[name] != rel:
                raise PlanStructureError(
                    f"conflicting cardinalities for relation {name!r}"
                )
            relations[name] = rel
            return
        walk(node["build"])
        walk(node["probe"])

    walk(payload)
    return Catalog(list(relations.values()))
