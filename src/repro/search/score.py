"""Candidate scoring: TREESCHEDULE as the plan-search objective function.

A candidate's score is the tuple of objectives extracted from its full
TREESCHEDULE run — response time (the single-objective ranking key),
total work (sum of all placed clone work components), and max per-site
load (the hottest site's accumulated load length across all phases).
The many-objective mode (:mod:`repro.search.pareto`) trades these three
against each other.

:class:`CandidatePoint` is the frozen, canonical-JSON-able coordinate
that flows through :class:`~repro.experiments.parallel.ParallelRunner`:
the plan travels as its canonical payload *text* (already the dedupe
key's bytes), and the scheduling context as plain dataclasses, so the
runner's :func:`~repro.store.point_key_payload` keying memoizes scores
in the content-addressed artifact store — a warm re-search schedules
zero cold candidates.  :func:`evaluate_candidate` is module-level,
hence picklable into pool workers.

:func:`schedule_candidate` produces the winner's *full*
:class:`~repro.engine.result.ScheduleResult`, cached under
:data:`~repro.store.KIND_PLAN` through the serialization round-trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.cluster import ClusterSpec
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.tree_schedule import tree_schedule
from repro.cost.annotate import annotate_plan
from repro.cost.params import SystemParameters
from repro.engine.result import ScheduleResult
from repro.exceptions import ConfigurationError
from repro.obs.tracer import current_tracer
from repro.plans.join_tree import PlanNode
from repro.plans.operator_tree import expand_plan
from repro.plans.task_tree import build_task_tree
from repro.search.canonical import plan_from_payload, plan_payload
from repro.store import KIND_PLAN, ArtifactStore, canonical_json

__all__ = [
    "CandidatePoint",
    "evaluate_candidate",
    "schedule_candidate",
    "max_site_load",
]


@dataclass(frozen=True)
class CandidatePoint:
    """One candidate plan × scheduling context, runner/store-ready.

    ``plan_json`` is the canonical JSON text of the plan payload
    (:func:`~repro.search.canonical.plan_payload` through
    :func:`~repro.store.canonical_json`), so the point is a frozen
    dataclass of plain JSON-able fields — exactly what
    :func:`~repro.store.point_key_payload` needs to key it.
    """

    plan_json: str
    p: int
    f: float
    shelf: str
    params: SystemParameters
    comm: CommunicationModel
    overlap: OverlapModel
    #: ``None`` for homogeneous searches (uniform specs are normalized
    #: away upstream so their scores share cache entries).
    cluster: ClusterSpec | None = None


def candidate_point(
    plan: PlanNode,
    *,
    p: int,
    f: float,
    shelf: str,
    params: SystemParameters,
    comm: CommunicationModel,
    overlap: OverlapModel,
    cluster: ClusterSpec | None = None,
) -> CandidatePoint:
    """Build the sweep point for one candidate plan."""
    return CandidatePoint(
        plan_json=canonical_json(plan_payload(plan)),
        p=p,
        f=f,
        shelf=shelf,
        params=params,
        comm=comm,
        overlap=overlap,
        cluster=cluster,
    )


def max_site_load(result: ScheduleResult) -> float:
    """The hottest site's accumulated load length across all phases.

    Sums each site's per-shelf load vectors componentwise over the whole
    phased schedule and returns the maximum component of the largest
    accumulated vector — the resource-footprint objective of the
    many-objective mode.  ``0.0`` for bound-only results.
    """
    accumulated: dict[int, list[float]] = {}
    for shelf in result.timelines:
        for site in shelf.sites:
            acc = accumulated.get(site.site_index)
            if acc is None:
                accumulated[site.site_index] = list(site.load)
            else:
                for axis, value in enumerate(site.load):
                    acc[axis] += value
    if not accumulated:
        return 0.0
    return max(max(load) for load in accumulated.values())


def _schedule_point(point: CandidatePoint) -> ScheduleResult:
    plan = plan_from_payload(json.loads(point.plan_json))
    op_tree = expand_plan(plan)
    annotate_plan(op_tree, point.params)
    task_tree = build_task_tree(op_tree)
    return tree_schedule(
        op_tree,
        task_tree,
        p=point.p,
        comm=point.comm,
        overlap=point.overlap,
        f=point.f,
        shelf=point.shelf,
        capacities=(
            point.cluster.capacities_or_none()
            if point.cluster is not None
            else None
        ),
    )


def evaluate_candidate(point: CandidatePoint) -> dict[str, float]:
    """Score one candidate: schedule it and extract the objectives.

    Deterministic, side-effect free, module-level: safe for process
    pools and for content-addressed memoization.  The returned dict is
    plain JSON data (the store persists it verbatim).
    """
    with current_tracer().span("plan_score", p=point.p, shelf=point.shelf):
        result = _schedule_point(point)
        total = result.total_work()
        return {
            "response_time": result.response_time,
            "num_phases": float(result.num_phases),
            "total_work": total.total() if total is not None else 0.0,
            "max_site_load": max_site_load(result),
        }


def schedule_candidate(
    point: CandidatePoint,
    *,
    store: ArtifactStore | None = None,
) -> tuple[ScheduleResult, bool]:
    """The full schedule of one candidate, store-cached under ``KIND_PLAN``.

    Returns ``(result, from_store)``.  The cache round-trips the result
    through :mod:`repro.serialization`, so a hit reconstructs the same
    phased schedule, timelines and instrumentation a fresh run would
    produce — this is what lets a warm re-search hand back the winner's
    schedule without scheduling a single candidate.
    """
    from repro.serialization import (
        schedule_result_from_dict,
        schedule_result_to_dict,
    )

    key = None
    if store is not None:
        try:
            key = store.key(KIND_PLAN, _plan_store_payload(point))
        except ConfigurationError:
            key = None
        if key is not None:
            cached = store.get(KIND_PLAN, key)
            if isinstance(cached, dict):
                try:
                    return schedule_result_from_dict(cached), True
                except ConfigurationError:
                    pass  # foreign/stale payload: recompute
    result = _schedule_point(point)
    if store is not None and key is not None:
        try:
            store.put(KIND_PLAN, key, schedule_result_to_dict(result))
        except (ConfigurationError, TypeError):
            pass  # unserializable result: skip caching
    return result, False


def _plan_store_payload(point: CandidatePoint) -> dict[str, Any]:
    """Content-key payload of a winner-schedule artifact."""
    payload = {
        "plan": json.loads(point.plan_json),
        "p": point.p,
        "f": point.f,
        "shelf": point.shelf,
        "params": point.params,
        "comm": point.comm,
        "overlap": point.overlap,
    }
    # Emitted only when heterogeneous, so homogeneous keys are unchanged.
    if point.cluster is not None:
        payload["cluster"] = point.cluster
    return payload
