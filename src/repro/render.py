"""ASCII rendering of schedules: site tables, load bars, phase summaries.

Terminal-friendly views of scheduling results, used by the examples and
handy when debugging placements:

* :func:`render_schedule` — one row per site: resident clones, per-resource
  load, Equation (2) site time, with the bottleneck site marked;
* :func:`render_load_bars` — a horizontal bar chart of per-site
  ``l(work(s))`` values (the quantity the list scheduler balances);
* :func:`render_phased` — per-phase summary of a full plan schedule:
  makespan, binding term of Equation (3), operator count, utilization;
* :func:`render_site_timeline` — a Gantt-like view of one simulated
  site's clone traces (start/finish bars under the sharing policy that
  produced them).
"""

from __future__ import annotations

from repro.core.schedule import PhasedSchedule, Schedule
from repro.core.work_vector import Resource
from repro.sim.simulator import SiteSimulation

__all__ = [
    "render_schedule",
    "render_load_bars",
    "render_phased",
    "render_site_timeline",
]

_RESOURCE_NAMES = {0: "cpu", 1: "disk", 2: "net"}


def _resource_label(i: int, d: int) -> str:
    if d == 3 and i in _RESOURCE_NAMES:
        return _RESOURCE_NAMES[i]
    return f"r{i}"


def render_schedule(schedule: Schedule, max_clone_names: int = 4) -> str:
    """Render one phase's placement as a per-site table."""
    d = schedule.d
    bottleneck = schedule.bottleneck_site().index if schedule.clone_count() else -1
    headers = ["site", "clones", *(_resource_label(i, d) for i in range(d)), "t_site", ""]
    rows: list[list[str]] = []
    for site in schedule.sites:
        names = [f"{c.operator}#{c.clone_index}" for c in site.clones]
        shown = ", ".join(names[:max_clone_names])
        if len(names) > max_clone_names:
            shown += f", +{len(names) - max_clone_names}"
        load = site.load_vector() if not site.is_empty() else None
        rows.append(
            [
                str(site.index),
                shown or "(idle)",
                *(
                    f"{load[i]:.3g}" if load is not None else "-"
                    for i in range(d)
                ),
                f"{site.t_site():.4g}",
                "<= bottleneck" if site.index == bottleneck else "",
            ]
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    lines.append(
        f"makespan {schedule.makespan():.4g} "
        f"({'congestion' if schedule.is_congestion_bound() else 'operator'}-bound)"
    )
    return "\n".join(lines)


def render_load_bars(schedule: Schedule, width: int = 40) -> str:
    """Render per-site ``l(work(s))`` as horizontal bars."""
    lengths = [
        (site.index, site.length() if not site.is_empty() else 0.0)
        for site in schedule.sites
    ]
    peak = max((value for _, value in lengths), default=0.0)
    lines = [f"per-site l(work) — peak {peak:.4g}"]
    for index, value in lengths:
        filled = 0 if peak <= 0 else round(width * value / peak)
        lines.append(f"  s{index:<3d} |{'#' * filled:<{width}}| {value:.4g}")
    return "\n".join(lines)


def render_site_timeline(site_sim: SiteSimulation, width: int = 48) -> str:
    """Render one simulated site's clone traces as a Gantt-like chart.

    Each clone occupies one row; its bar spans start to finish on a time
    axis scaled to the site's completion time.  The trailing column shows
    the observed stretch (finish-start over stand-alone time).
    """
    horizon = site_sim.completion_time
    traces = sorted(
        site_sim.traces, key=lambda t: (t.start, -t.nominal_t_seq, t.operator)
    )
    label_width = max(
        (len(f"{t.operator}#{t.clone_index}") for t in traces), default=5
    )
    lines = [
        f"site {site_sim.site_index}: simulated {horizon:.4g} "
        f"(analytic {site_sim.analytic_time:.4g})"
    ]
    for trace in traces:
        if horizon > 0:
            start = round(width * trace.start / horizon)
            end = max(start + 1, round(width * trace.finish / horizon))
            end = min(end, width)
        else:
            start, end = 0, 1
        bar = " " * start + "=" * (end - start)
        label = f"{trace.operator}#{trace.clone_index}"
        lines.append(
            f"  {label:<{label_width}} |{bar:<{width}}| "
            f"{trace.finish - trace.start:.4g} (x{trace.stretch:.2f})"
        )
    return "\n".join(lines)


def render_phased(phased: PhasedSchedule) -> str:
    """Render a full phased schedule as a per-phase summary table."""
    headers = ["phase", "tasks", "ops", "clones", "makespan", "bound-by", "util(max-res)"]
    rows: list[list[str]] = []
    for i, (schedule, label) in enumerate(zip(phased.phases, phased.labels)):
        util = schedule.average_utilization()
        peak_res = max(range(schedule.d), key=lambda k: util[k]) if util else 0
        rows.append(
            [
                str(i),
                label,
                str(len(schedule.operators)),
                str(schedule.clone_count()),
                f"{schedule.makespan():.4g}",
                "congestion" if schedule.is_congestion_bound() else "operator",
                f"{_resource_label(peak_res, schedule.d)} {util[peak_res] * 100:.0f}%",
            ]
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    lines.append(f"total response time {phased.response_time():.4g}")
    return "\n".join(lines)
