"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The subclasses map
to the major layers of the system:

* model-level validation (:class:`InvalidWorkVectorError`,
  :class:`ModelValidationError`),
* plan construction (:class:`PlanStructureError`),
* scheduling (:class:`SchedulingError`, :class:`InfeasibleScheduleError`),
* configuration of experiments and cost models
  (:class:`ConfigurationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ModelValidationError(ReproError, ValueError):
    """A model object (resource usage, overlap parameter, ...) is invalid.

    Raised, for instance, when a sequential execution time violates the
    fundamental bound ``max_i W[i] <= T_seq <= sum_i W[i]`` of Section 4.1,
    or when an overlap parameter falls outside ``[0, 1]``.
    """


class InvalidWorkVectorError(ModelValidationError):
    """A work vector has an invalid shape or negative components."""


class PlanStructureError(ReproError, ValueError):
    """A query graph, join tree, operator tree, or task tree is malformed.

    Examples: a query graph that is not a tree, an operator tree with a
    cycle, or a task tree whose blocking edges do not form a tree.
    """


class ImmutableAnnotationError(PlanStructureError):
    """An attached cost annotation would be overwritten in place.

    Operator specs are write-once: re-annotating a (possibly shared)
    operator tree with different parameters must go through the immutable
    :meth:`repro.cost.annotate.PlanAnnotation.with_params` path instead of
    rewriting the specs attached to the tree's nodes.
    """


class SchedulingError(ReproError, RuntimeError):
    """A scheduling algorithm was invoked with inconsistent inputs.

    Examples: duplicate operator identifiers, a rooted operator placed on a
    site index outside ``0..P-1``, or two clones of the same operator rooted
    at the same site (violating constraint (A) of Section 5.3).
    """


class InfeasibleScheduleError(SchedulingError):
    """No feasible schedule exists for the given constraints.

    The canonical case is an operator whose degree of parallelism exceeds
    the number of sites that are allowed to host it.
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment or cost-model configuration parameter is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The execution simulator detected an inconsistency.

    Raised when a simulated schedule violates a per-resource capacity
    constraint or when a sharing policy produces a non-physical rate.
    """


class ServiceError(ReproError, RuntimeError):
    """The online scheduler service reached an inconsistent state.

    Examples: a virtual-time deadlock (every service task is blocked and
    no timer is pending), a query retired twice from the site pool, or a
    placement that exceeds the pool's site count.
    """
