"""Operator cloning and partitioned parallelism (Sections 4.3, 5.2.1).

In partitioned parallelism the work vector of an operator is split among a
set of *operator clones* [GHK92]; each clone executes on a single site and
works on a portion of the operator's data.  This module implements:

* :class:`OperatorSpec` — the scheduler-facing description of one physical
  operator: its zero-communication work vector (whose component sum is the
  processing area ``W_p``) and the data volume ``D`` it moves over the
  interconnect;
* clone-vector construction under the experimental assumption **EA1 (no
  execution skew)**: the work vector (processing plus ``beta * D`` network
  time) is distributed perfectly among the ``N`` participating sites, while
  the serial startup ``alpha * N`` is charged to a single designated
  *coordinator* clone, divided equally between the coordinator's CPU and
  its network-interface component;
* the parallel execution time ``T_par(op, N)`` of Equation (1) — the
  maximum sequential time over the clones;
* degree-of-parallelism selection: the coarse-grain bound
  ``N_max(op, f)`` of Proposition 4.1, clamped by the response-time-optimal
  degree so that assumption **A4 (non-increasing execution times)** is
  never violated (Section 6.1), and by the number of sites ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, SchedulingError
from repro.core.granularity import CommunicationModel, processing_area
from repro.core.resource_model import OverlapModel
from repro.core.work_vector import WorkVector

__all__ = [
    "OperatorSpec",
    "CoordinatorPolicy",
    "clone_work_vectors",
    "total_work_vector",
    "parallel_time",
    "response_optimal_degree",
    "coarse_grain_degree",
]


@dataclass(frozen=True)
class OperatorSpec:
    """Scheduler-facing description of one physical query operator.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"scan(R3)"``, ``"probe(J7)"``).
        Names must be unique within one scheduling problem; they implement
        constraint (A) of Section 5.3 (no two clones of the same operator
        on the same site).
    work:
        The zero-communication work vector.  Its component sum is the
        processing area ``W_p(op)``, constant over all executions.
    data_volume:
        ``D``: total bytes of the operator's input and output data sets
        transferred over the interconnect (assumption A5: pipelined
        outputs are always repartitioned).
    """

    name: str
    work: WorkVector
    data_volume: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("operator name must be non-empty")
        if self.data_volume < 0.0:
            raise ConfigurationError(
                f"operator {self.name!r}: data volume must be >= 0, got {self.data_volume}"
            )

    @property
    def d(self) -> int:
        """Dimensionality of the operator's work vector."""
        return self.work.d

    @property
    def processing_area(self) -> float:
        """``W_p(op)``: sum of the zero-communication work components."""
        return processing_area(self.work)


@dataclass(frozen=True)
class CoordinatorPolicy:
    """How the serial startup cost ``alpha * N`` is charged (EA1).

    The startup of a parallel execution cannot be distributed among the
    participating sites; it is incurred at a single coordinator site.  The
    experimental model divides it equally between the coordinator's CPU
    and its network interface.

    Attributes
    ----------
    cpu_axis:
        Work-vector index receiving the CPU half of the startup.
    network_axis:
        Work-vector index receiving the network half.  ``None`` selects
        the last dimension (which is the network interface in the default
        three-resource layout ``CPU, DISK, NETWORK``).
    cpu_fraction:
        Fraction of the startup charged to ``cpu_axis`` (the remainder
        goes to ``network_axis``).  The paper's EA1 uses ``0.5``.
    """

    cpu_axis: int = 0
    network_axis: int | None = None
    cpu_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ConfigurationError(
                f"cpu_fraction must lie in [0, 1], got {self.cpu_fraction}"
            )

    def startup_vector(self, d: int, startup: float) -> WorkVector:
        """Return the ``d``-dimensional vector charging ``startup`` seconds."""
        net_axis = self.network_axis if self.network_axis is not None else d - 1
        if not 0 <= self.cpu_axis < d or not 0 <= net_axis < d:
            raise ConfigurationError(
                f"coordinator axes ({self.cpu_axis}, {net_axis}) out of range for d={d}"
            )
        comps = [0.0] * d
        comps[self.cpu_axis] += self.cpu_fraction * startup
        comps[net_axis] += (1.0 - self.cpu_fraction) * startup
        return WorkVector(comps)


#: The experimental default: startup split equally between the coordinator's
#: CPU (axis 0) and network interface (last axis).
DEFAULT_COORDINATOR_POLICY = CoordinatorPolicy()


def clone_work_vectors(
    spec: OperatorSpec,
    n: int,
    comm: CommunicationModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> list[WorkVector]:
    """Partition ``spec`` into ``n`` clone work vectors (EA1, Section 5.2.1).

    The processing work vector plus the distributed network-transfer time
    ``beta * D`` (placed on the network axis) is divided perfectly by
    ``n``; the startup ``alpha * n`` is then added to clone 0, the
    coordinator, split between its CPU and network components according to
    ``policy``.

    The sum of the returned vectors equals the operator's *total* work
    vector, whose component sum is ``W_p(op) + W_c(op, n)`` as required by
    the Section 5.1 accounting.
    """
    if n < 1:
        raise SchedulingError(f"operator {spec.name!r}: clone count must be >= 1, got {n}")
    d = spec.d
    net_axis = policy.network_axis if policy.network_axis is not None else d - 1
    transfer = comm.transfer_cost(spec.data_volume)
    base = spec.work + WorkVector.unit(d, net_axis, transfer)
    share = base / n
    clones = [share] * n
    startup = comm.startup_cost(n)
    if startup > 0.0:
        clones[0] = share + policy.startup_vector(d, startup)
    return clones


def total_work_vector(
    spec: OperatorSpec,
    n: int,
    comm: CommunicationModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> WorkVector:
    """Return ``W̄_op`` for an ``n``-site execution, communication included.

    Satisfies ``total.total() == W_p(op) + W_c(op, n)`` (Section 5.1) and
    is componentwise non-decreasing in ``n`` — the property the malleable
    extension of Section 7 relies on.
    """
    if n < 1:
        raise SchedulingError(f"operator {spec.name!r}: clone count must be >= 1, got {n}")
    d = spec.d
    net_axis = policy.network_axis if policy.network_axis is not None else d - 1
    transfer = comm.transfer_cost(spec.data_volume)
    total = spec.work + WorkVector.unit(d, net_axis, transfer)
    startup = comm.startup_cost(n)
    if startup > 0.0:
        total = total + policy.startup_vector(d, startup)
    return total


def parallel_time(
    spec: OperatorSpec,
    n: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> float:
    """Equation (1): ``T_par(op, N) = max_k T_seq(W̄_k)`` over the clones.

    Under EA1 the maximum is attained by the coordinator clone (the only
    one carrying extra startup work), so only two distinct sequential
    times need to be evaluated.
    """
    if n < 1:
        raise SchedulingError(f"operator {spec.name!r}: clone count must be >= 1, got {n}")
    d = spec.d
    net_axis = policy.network_axis if policy.network_axis is not None else d - 1
    share = (spec.work + WorkVector.unit(d, net_axis, comm.transfer_cost(spec.data_volume))) / n
    startup = comm.startup_cost(n)
    coordinator = share
    if startup > 0.0:
        coordinator = share + policy.startup_vector(d, startup)
    t_coord = overlap.t_seq(coordinator)
    if n == 1:
        return t_coord
    return max(t_coord, overlap.t_seq(share))


def response_optimal_degree(
    spec: OperatorSpec,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> int:
    """Return the degree in ``1..p`` minimizing ``T_par(op, N)``.

    For each operator there is an optimal degree of partitioned
    parallelism beyond which startup causes a speed-down [WFA92]; the
    Section 6.1 implementation note requires that this degree is never
    exceeded, enforcing assumption A4 on the range of degrees in use.
    Ties are broken toward the *smaller* degree (less communication for
    the same response time).
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    best_n = 1
    best_t = parallel_time(spec, 1, comm, overlap, policy)
    for n in range(2, p + 1):
        t = parallel_time(spec, n, comm, overlap, policy)
        if t < best_t * (1.0 - 1e-12):
            best_t = t
            best_n = n
    return best_n


def coarse_grain_degree(
    spec: OperatorSpec,
    p: int,
    f: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> int:
    """Degree of parallelism used by the scheduler for a floating operator.

    ``N_i = min{ N_max(op_i, f), N_rt(op_i), P }`` where ``N_max`` is the
    coarse-grain bound of Proposition 4.1 and ``N_rt`` is the
    response-time-optimal degree (A4 enforcement, Section 6.1).
    """
    n_cg = comm.n_max(f, spec.processing_area, spec.data_volume)
    n_cap = min(n_cg, p)
    if n_cap <= 1:
        return 1
    n_rt = response_optimal_degree(spec, n_cap, comm, overlap, policy)
    return max(1, min(n_cap, n_rt))
