"""Malleable operator scheduling (Section 7).

In the *malleable* problem the degree of parallelism of each floating
operator is no longer fixed by the coarse-granularity condition: the
scheduler is free to choose any parallelization ``N̄`` with the objective
of minimizing response time over **all** possible parallel schedules.

The paper adapts the greedy-family (GF) construction of Turek, Wolf and Yu
[TWY92], exploiting that in the work-vector model the total work vector of
an operator is componentwise non-decreasing in its degree of parallelism:

1. the first candidate is the minimum-total-work parallelization
   ``N̄¹ = (1, 1, ..., 1)``;
2. candidate ``k`` is obtained from candidate ``k - 1`` by finding the
   operator whose parallel time equals ``h(N̄^{k-1})`` (the slowest one)
   and increasing its degree by one;
3. the construction stops when no more sites can be allotted to the
   slowest operator (its degree has reached ``P``).

Lemma 7.2 guarantees the family contains a parallelization ``N̄`` with
``LB(N̄) <= LB(N̄*)`` for the optimal parallelization ``N̄*``; by
Lemma 7.1, list-scheduling that candidate yields a schedule within
``2d + 1`` of the global optimum (Theorem 7.1).  The family has at most
``1 + M(P - 1)`` members, so the preprocessing step costs
``O(M P log M)`` and does not change the scheduler's asymptotic
complexity.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.bounds import theorem51_fixed_degree_bound
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    parallel_time,
    total_work_vector,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import (
    OperatorScheduleResult,
    RootedPlacement,
    operator_schedule,
)
from repro.core.resource_model import OverlapModel
from repro.engine.driver import schedule_phases
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import ScheduleResult

__all__ = [
    "ParallelizationCandidate",
    "candidate_parallelizations",
    "select_parallelization",
    "malleable_schedule",
    "malleable_tree_schedule",
    "MalleableResult",
]


@dataclass(frozen=True)
class ParallelizationCandidate:
    """One member of the greedy family of parallelizations.

    Attributes
    ----------
    degrees:
        Degree of parallelism per operator name.
    h:
        ``h(N̄) = max_i T_par(op_i, N_i)``, the slowest operator's time.
    congestion:
        ``l(S(N̄)) / P``, the per-site share of the most loaded resource.
    """

    degrees: dict[str, int]
    h: float
    congestion: float

    @property
    def lower_bound(self) -> float:
        """``LB(N̄) = max{ l(S(N̄))/P, h(N̄) }``."""
        return max(self.h, self.congestion)


def candidate_parallelizations(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> Iterator[ParallelizationCandidate]:
    """Generate the greedy family of Section 7 lazily, cheapest first.

    Implementation notes: the slowest operator is tracked with a max-heap
    keyed by ``(-T_par, name)`` (names break ties deterministically);
    ``l(S(N̄))`` is maintained incrementally — increasing one operator's
    degree adds exactly one startup quantum ``alpha`` (split by the
    coordinator policy) to the total-work sum, so each step costs
    ``O(log M + d)``.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if not specs:
        return
    d = specs[0].d
    degrees = {spec.name: 1 for spec in specs}
    by_name = {spec.name: spec for spec in specs}
    if len(by_name) != len(specs):
        raise SchedulingError("duplicate operator names in malleable problem")

    load = [0.0] * d
    heap: list[tuple[float, str]] = []
    for spec in specs:
        t = parallel_time(spec, 1, comm, overlap, policy)
        heapq.heappush(heap, (-t, spec.name))
        for i, c in enumerate(total_work_vector(spec, 1, comm, policy).components):
            load[i] += c

    while True:
        neg_h, slowest = heap[0]
        yield ParallelizationCandidate(
            degrees=dict(degrees), h=-neg_h, congestion=max(load) / p
        )
        # Step 2/3: increase the slowest operator's degree, or stop when no
        # more sites can be allotted to it.
        if degrees[slowest] >= p:
            return
        heapq.heappop(heap)
        degrees[slowest] += 1
        n = degrees[slowest]
        spec = by_name[slowest]
        t = parallel_time(spec, n, comm, overlap, policy)
        heapq.heappush(heap, (-t, slowest))
        startup_delta = policy.startup_vector(d, comm.startup_cost(1))
        for i, c in enumerate(startup_delta.components):
            load[i] += c


def select_parallelization(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> tuple[ParallelizationCandidate, int]:
    """Return the family member minimizing ``LB(N̄)`` and the family size.

    By Theorem 7.1 the selected candidate, fed to the list-scheduling
    rule, yields a schedule within ``2d + 1`` of the optimal parallel
    schedule length.  Ties prefer the earlier (lower-total-work)
    candidate.
    """
    best: ParallelizationCandidate | None = None
    examined = 0
    for candidate in candidate_parallelizations(specs, p, comm, overlap, policy):
        examined += 1
        if best is None or candidate.lower_bound < best.lower_bound * (1.0 - 1e-12):
            best = candidate
    if best is None:
        raise SchedulingError("no operators to parallelize")
    return best, examined


@dataclass(frozen=True)
class MalleableResult:
    """Outcome of the malleable scheduler.

    Attributes
    ----------
    schedule_result:
        The list-scheduling outcome for the selected parallelization.
    candidate:
        The selected parallelization (degrees, ``h``, congestion).
    candidates_examined:
        Size of the greedy family that was enumerated
        (at most ``1 + M(P-1)``).
    guarantee:
        The Theorem 7.1 worst-case ratio ``2d + 1``.
    """

    schedule_result: OperatorScheduleResult
    candidate: ParallelizationCandidate
    candidates_examined: int
    guarantee: float

    @property
    def makespan(self) -> float:
        """Response time of the produced schedule."""
        return self.schedule_result.makespan

    @property
    def lower_bound(self) -> float:
        """``LB`` of the selected parallelization — also a lower bound on
        the globally optimal malleable schedule (Lemma 7.2)."""
        return self.candidate.lower_bound


def malleable_schedule(
    specs: Sequence[OperatorSpec],
    rooted: Sequence[RootedPlacement] = (),
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    selection: str = "lower_bound",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> MalleableResult:
    """Schedule independent floating operators without the CG_f restriction.

    Runs the greedy-family generation, selects one candidate
    parallelization, and applies the Figure 3 list scheduling rule with
    its degrees.  The result is provably within ``2d + 1`` of the optimum
    over all possible parallel schedules (Theorem 7.1) — note this
    requires neither assumption A4 nor any particular communication-cost
    model, only non-decreasing work vectors.

    Parameters
    ----------
    rooted:
        Operators with fixed homes (and hence fixed degrees); they take
        no part in the greedy-family search but are placed alongside the
        floating operators by the list rule.
    selection:
        ``"lower_bound"`` (the paper's rule): pick the family member with
        minimal ``LB(N̄)`` and list-schedule it — cheapest, and the form
        Theorem 7.1 analyzes.  ``"makespan"`` (extension): list-schedule
        *every* family member and keep the shortest schedule.  Since the
        LB-minimal candidate is among those evaluated, the Theorem 7.1
        guarantee carries over, and the result can only improve; the
        price is an extra factor of ``O(MP)`` scheduler invocations.
    """
    if not specs:
        raise SchedulingError("malleable_schedule requires at least one operator")
    guarantee = theorem51_fixed_degree_bound(specs[0].d)
    if selection == "lower_bound":
        candidate, examined = select_parallelization(specs, p, comm, overlap, policy)
        result = operator_schedule(
            specs,
            rooted,
            p=p,
            comm=comm,
            overlap=overlap,
            degrees=candidate.degrees,
            policy=policy,
        )
        return MalleableResult(
            schedule_result=result,
            candidate=candidate,
            candidates_examined=examined,
            guarantee=guarantee,
        )
    if selection == "makespan":
        best: tuple[OperatorScheduleResult, ParallelizationCandidate] | None = None
        examined = 0
        for candidate in candidate_parallelizations(specs, p, comm, overlap, policy):
            examined += 1
            result = operator_schedule(
                specs,
                rooted,
                p=p,
                comm=comm,
                overlap=overlap,
                degrees=candidate.degrees,
                policy=policy,
            )
            if best is None or result.makespan < best[0].makespan * (1.0 - 1e-12):
                best = (result, candidate)
        assert best is not None  # specs is non-empty, family has >= 1 member
        return MalleableResult(
            schedule_result=best[0],
            candidate=best[1],
            candidates_examined=examined,
            guarantee=guarantee,
        )
    raise SchedulingError(
        f"unknown selection {selection!r}; expected 'lower_bound' or 'makespan'"
    )


def malleable_tree_schedule(
    op_tree,
    task_tree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    selection: str = "lower_bound",
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    metrics: MetricsRecorder | None = None,
) -> ScheduleResult:
    """Full-plan malleable scheduling via the synchronized-phase driver.

    Each shelf's floating operators are re-parallelized with the Section 7
    greedy family (the CG_f forced degrees computed by the driver are
    deliberately ignored — malleability means the degree choice is free);
    rooted operators keep their inherited homes.  Phases without floating
    work degrade to plain rooted placement.
    """

    def pack(floating, rooted, forced, n_sites):
        del forced  # malleable: degrees are chosen by the greedy family
        if not floating:
            return operator_schedule(
                (), rooted, p=n_sites, comm=comm, overlap=overlap, policy=policy
            )
        return malleable_schedule(
            floating,
            rooted,
            p=n_sites,
            comm=comm,
            overlap=overlap,
            selection=selection,
            policy=policy,
        ).schedule_result

    return schedule_phases(
        op_tree,
        task_tree,
        p=p,
        comm=comm,
        overlap=overlap,
        shelf=shelf,
        policy=policy,
        pack_phase=pack,
        algorithm="malleable",
        metrics=metrics,
    )


@register(
    "malleable",
    description="Section 7 malleable variant: per-shelf greedy-family "
    "parallelization (no CG_f restriction) + list packing",
)
def _malleable(query, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return malleable_tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        policy=request.policy,
        metrics=request.metrics,
    )
