"""Malleable operator scheduling (Section 7).

In the *malleable* problem the degree of parallelism of each floating
operator is no longer fixed by the coarse-granularity condition: the
scheduler is free to choose any parallelization ``N̄`` with the objective
of minimizing response time over **all** possible parallel schedules.

The paper adapts the greedy-family (GF) construction of Turek, Wolf and Yu
[TWY92], exploiting that in the work-vector model the total work vector of
an operator is componentwise non-decreasing in its degree of parallelism:

1. the first candidate is the minimum-total-work parallelization
   ``N̄¹ = (1, 1, ..., 1)``;
2. candidate ``k`` is obtained from candidate ``k - 1`` by finding the
   operator whose parallel time equals ``h(N̄^{k-1})`` (the slowest one)
   and increasing its degree by one;
3. the construction stops when no more sites can be allotted to the
   slowest operator (its degree has reached ``P``).

Lemma 7.2 guarantees the family contains a parallelization ``N̄`` with
``LB(N̄) <= LB(N̄*)`` for the optimal parallelization ``N̄*``; by
Lemma 7.1, list-scheduling that candidate yields a schedule within
``2d + 1`` of the global optimum (Theorem 7.1).  The family has at most
``1 + M(P - 1)`` members, so the preprocessing step costs
``O(M P log M)`` and does not change the scheduler's asymptotic
complexity.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core import batch as _batch
from repro.core.bounds import theorem51_fixed_degree_bound
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    parallel_time,
    total_work_vector,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import (
    OperatorScheduleResult,
    RootedPlacement,
    operator_schedule,
)
from repro.core.resource_model import OverlapModel
from repro.engine.driver import schedule_phases
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import ScheduleResult

__all__ = [
    "ParallelizationCandidate",
    "CandidateFamily",
    "candidate_parallelizations",
    "enumerate_candidate_family",
    "select_parallelization",
    "select_parallelization_batched",
    "malleable_schedule",
    "malleable_tree_schedule",
    "MalleableResult",
]


@dataclass(frozen=True)
class ParallelizationCandidate:
    """One member of the greedy family of parallelizations.

    Attributes
    ----------
    degrees:
        Degree of parallelism per operator name.
    h:
        ``h(N̄) = max_i T_par(op_i, N_i)``, the slowest operator's time.
    congestion:
        ``l(S(N̄)) / C``, the capacity share of the most loaded resource
        (``C`` is the total system capacity — ``P`` on a homogeneous
        cluster).
    """

    degrees: dict[str, int]
    h: float
    congestion: float

    @property
    def lower_bound(self) -> float:
        """``LB(N̄) = max{ l(S(N̄))/C, h(N̄) }``."""
        return max(self.h, self.congestion)


def candidate_parallelizations(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> Iterator[ParallelizationCandidate]:
    """Generate the greedy family of Section 7 lazily, cheapest first.

    Implementation notes: the slowest operator is tracked with a max-heap
    keyed by ``(-T_par, name)`` (names break ties deterministically);
    ``l(S(N̄))`` is maintained incrementally — increasing one operator's
    degree adds exactly one startup quantum ``alpha`` (split by the
    coordinator policy) to the total-work sum, so each step costs
    ``O(log M + d)``.  ``total_capacity`` sets the congestion
    denominator ``C`` (default: the site count ``P``; the division is
    bit-identical in that case).
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if not specs:
        return
    denom = float(p) if total_capacity is None else float(total_capacity)
    if not denom > 0.0:
        raise SchedulingError(
            f"total capacity must be positive, got {total_capacity!r}"
        )
    d = specs[0].d
    degrees = {spec.name: 1 for spec in specs}
    by_name = {spec.name: spec for spec in specs}
    if len(by_name) != len(specs):
        raise SchedulingError("duplicate operator names in malleable problem")

    load = [0.0] * d
    heap: list[tuple[float, str]] = []
    for spec in specs:
        t = parallel_time(spec, 1, comm, overlap, policy)
        heapq.heappush(heap, (-t, spec.name))
        for i, c in enumerate(total_work_vector(spec, 1, comm, policy).components):
            load[i] += c

    while True:
        neg_h, slowest = heap[0]
        yield ParallelizationCandidate(
            degrees=dict(degrees), h=-neg_h, congestion=max(load) / denom
        )
        # Step 2/3: increase the slowest operator's degree, or stop when no
        # more sites can be allotted to it.
        if degrees[slowest] >= p:
            return
        heapq.heappop(heap)
        degrees[slowest] += 1
        n = degrees[slowest]
        spec = by_name[slowest]
        t = parallel_time(spec, n, comm, overlap, policy)
        heapq.heappush(heap, (-t, slowest))
        startup_delta = policy.startup_vector(d, comm.startup_cost(1))
        for i, c in enumerate(startup_delta.components):
            load[i] += c


def select_parallelization(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> tuple[ParallelizationCandidate, int]:
    """Return the family member minimizing ``LB(N̄)`` and the family size.

    By Theorem 7.1 the selected candidate, fed to the list-scheduling
    rule, yields a schedule within ``2d + 1`` of the optimal parallel
    schedule length.  Ties prefer the earlier (lower-total-work)
    candidate.
    """
    best: ParallelizationCandidate | None = None
    examined = 0
    for candidate in candidate_parallelizations(
        specs, p, comm, overlap, policy, total_capacity=total_capacity
    ):
        examined += 1
        if best is None or candidate.lower_bound < best.lower_bound * (1.0 - 1e-12):
            best = candidate
    if best is None:
        raise SchedulingError("no operators to parallelize")
    return best, examined


@dataclass(frozen=True)
class CandidateFamily:
    """The whole greedy family in O(M + K) memory instead of O(M·K).

    :func:`candidate_parallelizations` materializes a full ``degrees``
    dict per member, which makes enumerating the family
    ``O(M²P)`` in time and memory for ``K = 1 + M(P-1)`` members.  This
    compressed form exploits the family's delta structure: member ``k``
    differs from member ``k-1`` by a single degree increment, so the
    family is fully described by the operator set, the per-step
    incremented operator, and the two per-member statistics.

    Attributes
    ----------
    operators:
        Operator names, each starting at degree 1 in member 0.
    increments:
        ``increments[k]`` is the operator whose degree was increased to
        obtain member ``k + 1`` from member ``k`` (length ``size - 1``).
    h_values:
        ``h(N̄^k)`` per member — the slowest operator's parallel time.
    congestions:
        ``l(S(N̄^k)) / C`` per member (``C`` = total system capacity).
    p:
        Number of sites the family was generated for.
    """

    operators: tuple[str, ...]
    increments: tuple[str, ...]
    h_values: tuple[float, ...]
    congestions: tuple[float, ...]
    p: int

    def __post_init__(self) -> None:
        if len(self.h_values) != len(self.congestions):
            raise SchedulingError(
                f"candidate family: {len(self.h_values)} h values vs "
                f"{len(self.congestions)} congestions"
            )
        if self.h_values and len(self.increments) != len(self.h_values) - 1:
            raise SchedulingError(
                f"candidate family: {len(self.h_values)} members need "
                f"{len(self.h_values) - 1} increments, got {len(self.increments)}"
            )

    @property
    def size(self) -> int:
        """Number of family members (at most ``1 + M(P-1)``)."""
        return len(self.h_values)

    def lower_bounds(self) -> list[float]:
        """``LB(N̄^k) = max{ l(S(N̄^k))/C, h(N̄^k) }`` for every member."""
        return [max(h, c) for h, c in zip(self.h_values, self.congestions)]

    def degrees_at(self, k: int) -> dict[str, int]:
        """Materialize member ``k``'s degree map (O(M + k))."""
        if not 0 <= k < self.size:
            raise SchedulingError(
                f"candidate index {k} outside family of size {self.size}"
            )
        degrees = {name: 1 for name in self.operators}
        for name in self.increments[:k]:
            degrees[name] += 1
        return degrees

    def candidate_at(self, k: int) -> ParallelizationCandidate:
        """Materialize member ``k`` as a :class:`ParallelizationCandidate`."""
        return ParallelizationCandidate(
            degrees=self.degrees_at(k),
            h=self.h_values[k],
            congestion=self.congestions[k],
        )


def enumerate_candidate_family(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> CandidateFamily:
    """Enumerate the entire greedy family as one batched pass.

    Runs the same max-heap walk as :func:`candidate_parallelizations`
    (identical ``parallel_time`` calls, identical ``(-t, name)``
    tie-breaking) but records only the per-step increment and ``h``; the
    congestion curve is evaluated for *all* members at once by
    :func:`repro.core.batch.family_congestions`, which reproduces the
    incremental ``load += delta`` fold of the generator bit for bit.
    The result is byte-identical to collecting the generator (golden
    tests), at O(M + K) rather than O(M·K) cost for a K-member family.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if not specs:
        return CandidateFamily(
            operators=(), increments=(), h_values=(), congestions=(), p=p
        )
    d = specs[0].d
    by_name = {spec.name: spec for spec in specs}
    if len(by_name) != len(specs):
        raise SchedulingError("duplicate operator names in malleable problem")
    degrees = {spec.name: 1 for spec in specs}

    load0 = [0.0] * d
    heap: list[tuple[float, str]] = []
    for spec in specs:
        t = parallel_time(spec, 1, comm, overlap, policy)
        heapq.heappush(heap, (-t, spec.name))
        for i, c in enumerate(total_work_vector(spec, 1, comm, policy).components):
            load0[i] += c

    h_values: list[float] = []
    increments: list[str] = []
    while True:
        neg_h, slowest = heap[0]
        h_values.append(-neg_h)
        if degrees[slowest] >= p:
            break
        heapq.heappop(heap)
        degrees[slowest] += 1
        increments.append(slowest)
        spec = by_name[slowest]
        t = parallel_time(spec, degrees[slowest], comm, overlap, policy)
        heapq.heappush(heap, (-t, slowest))

    steps = len(increments)
    startup_delta = policy.startup_vector(d, comm.startup_cost(1)).components
    congestions = _batch.family_congestions(
        load0, startup_delta, steps, p, total_capacity=total_capacity
    )
    return CandidateFamily(
        operators=tuple(spec.name for spec in specs),
        increments=tuple(increments),
        h_values=tuple(h_values),
        congestions=tuple(congestions),
        p=p,
    )


def select_parallelization_batched(
    specs: Sequence[OperatorSpec],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> tuple[ParallelizationCandidate, int]:
    """Batched form of :func:`select_parallelization` — same result, O(M + K).

    Scans the family's lower bounds with the exact comparison the
    reference uses (``lb < best_lb * (1 - 1e-12)``, earlier member kept
    on ties) and materializes a degree map only for the winner.
    """
    family = enumerate_candidate_family(
        specs, p, comm, overlap, policy, total_capacity=total_capacity
    )
    if family.size == 0:
        raise SchedulingError("no operators to parallelize")
    h_values = family.h_values
    congestions = family.congestions
    best_k = 0
    best_lb = max(h_values[0], congestions[0])
    for k in range(1, family.size):
        lb = max(h_values[k], congestions[k])
        if lb < best_lb * (1.0 - 1e-12):
            best_k = k
            best_lb = lb
    return family.candidate_at(best_k), family.size


@dataclass(frozen=True)
class MalleableResult:
    """Outcome of the malleable scheduler.

    Attributes
    ----------
    schedule_result:
        The list-scheduling outcome for the selected parallelization.
    candidate:
        The selected parallelization (degrees, ``h``, congestion).
    candidates_examined:
        Size of the greedy family that was enumerated
        (at most ``1 + M(P-1)``).
    guarantee:
        The Theorem 7.1 worst-case ratio ``2d + 1``.
    """

    schedule_result: OperatorScheduleResult
    candidate: ParallelizationCandidate
    candidates_examined: int
    guarantee: float

    @property
    def makespan(self) -> float:
        """Response time of the produced schedule."""
        return self.schedule_result.makespan

    @property
    def lower_bound(self) -> float:
        """``LB`` of the selected parallelization — also a lower bound on
        the globally optimal malleable schedule (Lemma 7.2)."""
        return self.candidate.lower_bound


def malleable_schedule(
    specs: Sequence[OperatorSpec],
    rooted: Sequence[RootedPlacement] = (),
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    selection: str = "lower_bound",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    capacities: Sequence[float] | None = None,
) -> MalleableResult:
    """Schedule independent floating operators without the CG_f restriction.

    Runs the greedy-family generation, selects one candidate
    parallelization, and applies the Figure 3 list scheduling rule with
    its degrees.  The result is provably within ``2d + 1`` of the optimum
    over all possible parallel schedules (Theorem 7.1) — note this
    requires neither assumption A4 nor any particular communication-cost
    model, only non-decreasing work vectors.

    Parameters
    ----------
    rooted:
        Operators with fixed homes (and hence fixed degrees); they take
        no part in the greedy-family search but are placed alongside the
        floating operators by the list rule.
    selection:
        ``"lower_bound"`` (the paper's rule): pick the family member with
        minimal ``LB(N̄)`` and list-schedule it — cheapest, and the form
        Theorem 7.1 analyzes.  ``"makespan"`` (extension): list-schedule
        *every* family member and keep the shortest schedule.  Since the
        LB-minimal candidate is among those evaluated, the Theorem 7.1
        guarantee carries over, and the result can only improve; the
        price is an extra factor of ``O(MP)`` scheduler invocations.
    """
    if not specs:
        raise SchedulingError("malleable_schedule requires at least one operator")
    guarantee = theorem51_fixed_degree_bound(specs[0].d)
    total_capacity = None if capacities is None else float(sum(capacities))
    if selection == "lower_bound":
        # The batched pass is byte-identical to select_parallelization()
        # (retained as the test oracle) at O(M + K) instead of O(M·K).
        candidate, examined = select_parallelization_batched(
            specs, p, comm, overlap, policy, total_capacity=total_capacity
        )
        result = operator_schedule(
            specs,
            rooted,
            p=p,
            comm=comm,
            overlap=overlap,
            degrees=candidate.degrees,
            policy=policy,
            capacities=capacities,
        )
        return MalleableResult(
            schedule_result=result,
            candidate=candidate,
            candidates_examined=examined,
            guarantee=guarantee,
        )
    if selection == "makespan":
        best: tuple[OperatorScheduleResult, ParallelizationCandidate] | None = None
        examined = 0
        for candidate in candidate_parallelizations(
            specs, p, comm, overlap, policy, total_capacity=total_capacity
        ):
            examined += 1
            result = operator_schedule(
                specs,
                rooted,
                p=p,
                comm=comm,
                overlap=overlap,
                degrees=candidate.degrees,
                policy=policy,
                capacities=capacities,
            )
            if best is None or result.makespan < best[0].makespan * (1.0 - 1e-12):
                best = (result, candidate)
        assert best is not None  # specs is non-empty, family has >= 1 member
        return MalleableResult(
            schedule_result=best[0],
            candidate=best[1],
            candidates_examined=examined,
            guarantee=guarantee,
        )
    raise SchedulingError(
        f"unknown selection {selection!r}; expected 'lower_bound' or 'makespan'"
    )


def malleable_tree_schedule(
    op_tree,
    task_tree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    selection: str = "lower_bound",
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    metrics: MetricsRecorder | None = None,
    capacities: Sequence[float] | None = None,
) -> ScheduleResult:
    """Full-plan malleable scheduling via the synchronized-phase driver.

    Each shelf's floating operators are re-parallelized with the Section 7
    greedy family (the CG_f forced degrees computed by the driver are
    deliberately ignored — malleability means the degree choice is free);
    rooted operators keep their inherited homes.  Phases without floating
    work degrade to plain rooted placement.
    """

    def pack(floating, rooted, forced, n_sites):
        del forced  # malleable: degrees are chosen by the greedy family
        if not floating:
            return operator_schedule(
                (),
                rooted,
                p=n_sites,
                comm=comm,
                overlap=overlap,
                policy=policy,
                capacities=capacities,
            )
        return malleable_schedule(
            floating,
            rooted,
            p=n_sites,
            comm=comm,
            overlap=overlap,
            selection=selection,
            policy=policy,
            capacities=capacities,
        ).schedule_result

    return schedule_phases(
        op_tree,
        task_tree,
        p=p,
        comm=comm,
        overlap=overlap,
        shelf=shelf,
        policy=policy,
        pack_phase=pack,
        algorithm="malleable",
        metrics=metrics,
    )


@register(
    "malleable",
    description="Section 7 malleable variant: per-shelf greedy-family "
    "parallelization (no CG_f restriction) + list packing",
)
def _malleable(query, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return malleable_tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        policy=request.policy,
        metrics=request.metrics,
        capacities=request.capacities,
    )
