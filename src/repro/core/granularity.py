"""Coarse-grain parallelism: areas, granularity, and degree bounds (Section 4).

Increasing the partitioned parallelism of an operator reduces its execution
time until a saturation point, beyond which communication startup and
coordination overhead cause a speed-down [DGS+90].  To stay on the useful
side of that point the paper restricts attention to *coarse grain*
executions:

* the **processing area** ``W_p(op)`` is the total work performed by the
  operator on a single site with all operands locally resident (zero
  communication) — the sum of the components of its work vector;
* the **communication area** ``W_c(op, N)`` is the total communication
  overhead of distributing the execution across ``N`` sites, estimated by
  the linear model ``W_c(op, N) = alpha * N + beta * D`` (Section 4.3),
  where ``alpha`` is the per-site startup cost, ``beta`` the time spent at
  the network interface per byte transferred, and ``D`` the total number of
  bytes the operator moves over the interconnect;
* a parallel execution on ``N`` sites is **coarse grain with parameter f**
  (a ``CG_f`` execution, Definition 4.1) when
  ``W_c(op, N) <= f * W_p(op)``.

Proposition 4.1 then bounds the allowable degree of partitioned
parallelism:

    ``N_max(op, f) = max{ floor((f * W_p(op) - beta * D) / alpha), 1 }``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.core.work_vector import WorkVector

__all__ = [
    "processing_area",
    "CommunicationModel",
    "granularity_ratio",
    "is_coarse_grain",
]


def processing_area(work: WorkVector) -> float:
    """Return ``W_p(op)``: the sum of the work-vector components.

    This is constant over all possible executions of the operator and
    plays the role of the paper's scalar "work" metric when comparing with
    one-dimensional schedulers.
    """
    return work.total()


@dataclass(frozen=True)
class CommunicationModel:
    """The linear communication-overhead model of Section 4.3.

    ``W_c(op, N) = alpha * N + beta * D`` where

    * ``alpha`` — startup cost for each participating site (seconds).  The
      startup is inherently serial: it is incurred at the single
      coordinator site of the parallel execution, which is why there is
      always a degree of parallelism beyond which startup dominates.
    * ``beta`` — time spent at the network interface (or communication
      processor) per byte transferred (seconds/byte).

    This model is substantiated by the Gamma measurements [DGS+90]; simpler
    forms appear in earlier shared-nothing studies [GMSY93, WFA92].
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ConfigurationError(f"startup cost alpha must be >= 0, got {self.alpha}")
        if self.beta < 0.0:
            raise ConfigurationError(f"per-byte cost beta must be >= 0, got {self.beta}")

    def communication_area(self, n_sites: int, data_volume: float) -> float:
        """Return ``W_c(op, N)`` for an ``N``-site execution.

        Parameters
        ----------
        n_sites:
            Degree of partitioned parallelism ``N`` (must be ``>= 1``).
        data_volume:
            ``D``: total bytes of the operator's input and output data sets
            transferred over the interconnect.
        """
        if n_sites < 1:
            raise ConfigurationError(f"degree of parallelism must be >= 1, got {n_sites}")
        if data_volume < 0.0:
            raise ConfigurationError(f"data volume must be >= 0, got {data_volume}")
        return self.alpha * n_sites + self.beta * data_volume

    def startup_cost(self, n_sites: int) -> float:
        """Return the serial startup component ``alpha * N``."""
        if n_sites < 1:
            raise ConfigurationError(f"degree of parallelism must be >= 1, got {n_sites}")
        return self.alpha * n_sites

    def transfer_cost(self, data_volume: float) -> float:
        """Return the network-transfer component ``beta * D``."""
        if data_volume < 0.0:
            raise ConfigurationError(f"data volume must be >= 0, got {data_volume}")
        return self.beta * data_volume

    def n_max(self, f: float, w_p: float, data_volume: float) -> int:
        """Proposition 4.1: maximum degree of a ``CG_f`` execution.

        ``N_max(op, f) = max{ floor((f * W_p - beta*D) / alpha), 1 }``.

        A degenerate model with ``alpha == 0`` imposes no startup penalty,
        so any degree is coarse grain provided ``beta*D <= f*W_p``; we
        return a sentinel of ``2**31`` in that case (callers always clamp
        to the number of sites ``P``).

        Parameters
        ----------
        f:
            Granularity parameter (must be ``> 0``).
        w_p:
            Processing area ``W_p(op)``.
        data_volume:
            ``D``, bytes moved over the interconnect.
        """
        if f <= 0.0:
            raise ConfigurationError(f"granularity parameter f must be > 0, got {f}")
        if w_p < 0.0:
            raise ConfigurationError(f"processing area must be >= 0, got {w_p}")
        budget = f * w_p - self.beta * data_volume
        if self.alpha == 0.0:
            return 2**31 if budget >= 0.0 else 1
        return max(int(math.floor(budget / self.alpha)), 1)


def granularity_ratio(w_p: float, communication_area: float) -> float:
    """Return ``W_c / W_p`` — the inverse of Stone's granularity ratio.

    The paper defines granularity as ``W_p / W_c``; Definition 4.1 states
    the ``CG_f`` condition as ``W_c <= f * W_p``, i.e. this ratio being at
    most ``f``.  Returns ``inf`` for an operator with zero processing area
    and non-zero communication.
    """
    if w_p <= 0.0:
        return math.inf if communication_area > 0.0 else 0.0
    return communication_area / w_p


def is_coarse_grain(w_p: float, communication_area: float, f: float) -> bool:
    """Definition 4.1: is the execution ``CG_f``, i.e. ``W_c <= f * W_p``?"""
    if f <= 0.0:
        raise ConfigurationError(f"granularity parameter f must be > 0, got {f}")
    return communication_area <= f * w_p
