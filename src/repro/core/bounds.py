"""Lower bounds and suboptimality certificates (Theorem 5.1, Section 7).

For a parallelization ``N̄ = (N_1, ..., N_M)`` of independent operators the
paper uses the lower bound

    ``LB(N̄) = max{ l(S(N̄)) / P,  h(N̄) }``

where ``S(N̄)`` is the set of total work vectors (communication included)
and ``h(N̄) = max_i T_par(op_i, N_i)`` is the slowest operator's parallel
time.  Any schedule must run at least as long as its slowest operator, and
the most congested resource cannot serve more than ``P`` units of work per
unit of time — hence LB lower-bounds the optimal response time for the
given parallelization.

Theorem 5.1 then states that OPERATORSCHEDULE's makespan is within
``2d + 1`` of the optimum for fixed degrees and within ``2d(fd + 1) + 1``
of the optimal ``CG_f`` schedule.  :func:`certify` packages makespan,
bound, ratio and guarantee into an auditable record used throughout the
test-suite and benchmark harness.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.batch import lower_bounds_batch, sum_length
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    parallel_time,
    total_work_vector,
)
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel

__all__ = [
    "theorem51_fixed_degree_bound",
    "theorem51_coarse_grain_bound",
    "slowest_operator_time",
    "lower_bound",
    "lower_bound_family",
    "BoundCertificate",
    "certify",
]


def theorem51_fixed_degree_bound(d: int) -> float:
    """Theorem 5.1(a): performance ratio bound ``2d + 1`` for fixed degrees."""
    if d < 1:
        raise SchedulingError(f"dimensionality must be >= 1, got {d}")
    return 2.0 * d + 1.0


def theorem51_coarse_grain_bound(d: int, f: float) -> float:
    """Theorem 5.1(b): ratio bound ``2d(fd + 1) + 1`` vs. the optimal CG_f."""
    if d < 1:
        raise SchedulingError(f"dimensionality must be >= 1, got {d}")
    if f <= 0.0:
        raise SchedulingError(f"granularity parameter must be > 0, got {f}")
    return 2.0 * d * (f * d + 1.0) + 1.0


def slowest_operator_time(
    specs: Sequence[OperatorSpec],
    degrees: Mapping[str, int],
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> float:
    """Return ``h(N̄) = max_i T_par(op_i, N_i)`` (Section 7 notation)."""
    if not specs:
        return 0.0
    h = 0.0
    for spec in specs:
        try:
            n = degrees[spec.name]
        except KeyError:
            raise SchedulingError(
                f"no degree recorded for operator {spec.name!r}"
            ) from None
        h = max(h, parallel_time(spec, n, comm, overlap, policy))
    return h


def lower_bound(
    specs: Sequence[OperatorSpec],
    degrees: Mapping[str, int],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> float:
    """Return ``LB(N̄) = max{ l(S(N̄))/C, h(N̄) }``.

    Parameters
    ----------
    specs:
        The independent operators.
    degrees:
        Degree of parallelism per operator name.
    p:
        Number of system sites.
    comm, overlap, policy:
        The models in force (communication costs are *included* in the
        total work vectors, matching the Section 7 definition of
        ``S(N̄)``).
    total_capacity:
        Total system capacity ``C`` for the congestion side of the bound.
        Defaults to ``P`` (the homogeneous cluster, where the division is
        bit-identical to the historical ``/ p``); pass the sum of site
        capacities for a heterogeneous cluster — no resource can serve
        more than ``C`` units of work per unit of time system-wide, so
        ``l(S(N̄))/C`` remains a valid lower bound.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if not specs:
        return 0.0
    denom = float(p) if total_capacity is None else float(total_capacity)
    if not denom > 0.0:
        raise SchedulingError(
            f"total capacity must be positive, got {total_capacity!r}"
        )
    totals = [
        total_work_vector(spec, degrees[spec.name], comm, policy) for spec in specs
    ]
    # sum_length auto-selects the numpy reduction for large operator sets
    # and the exact sequential sum below the cutover.
    congestion = sum_length(totals) / denom
    return max(congestion, slowest_operator_time(specs, degrees, comm, overlap, policy))


def lower_bound_family(
    specs: Sequence[OperatorSpec],
    degree_family: Sequence[Mapping[str, int]],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> list[float]:
    """Return ``LB(N̄_k)`` for a whole family of parallelizations.

    Batch counterpart of :func:`lower_bound` for sweeps that score many
    candidate parallelizations of the *same* operator set (e.g. the
    Section 7 greedy family, or a sensitivity grid over degrees): the
    congestion sides are evaluated in one vectorized pass via
    :func:`repro.core.batch.lower_bounds_batch` when numpy is available.
    ``total_capacity`` generalizes the congestion denominator exactly as
    in :func:`lower_bound`.
    """
    if not specs:
        return [0.0 for _ in degree_family]
    d = specs[0].d
    groups = [
        [total_work_vector(spec, degrees[spec.name], comm, policy) for spec in specs]
        for degrees in degree_family
    ]
    h_values = [
        slowest_operator_time(specs, degrees, comm, overlap, policy)
        for degrees in degree_family
    ]
    return lower_bounds_batch(groups, h_values, p, d, total_capacity=total_capacity)


@dataclass(frozen=True)
class BoundCertificate:
    """An auditable record of a schedule's proximity to the lower bound.

    Attributes
    ----------
    makespan:
        Response time of the schedule under scrutiny.
    lower_bound:
        ``LB(N̄)`` for the schedule's parallelization (a lower bound on
        the optimum, hence ``ratio`` upper-bounds the true performance
        ratio).
    ratio:
        ``makespan / lower_bound`` (``1.0`` when both are zero).
    guarantee:
        The theoretical worst-case ratio the schedule must satisfy
        (``2d + 1`` for Theorem 5.1(a) / Theorem 7.1 checks).
    """

    makespan: float
    lower_bound: float
    ratio: float
    guarantee: float

    @property
    def satisfied(self) -> bool:
        """``True`` when the observed ratio respects the guarantee.

        A tiny relative tolerance absorbs floating-point noise; a
        ``False`` here indicates a genuine violation of the theorem (i.e.
        an implementation bug), never rounding.
        """
        return self.ratio <= self.guarantee * (1.0 + 1e-9)

    def __str__(self) -> str:
        status = "OK" if self.satisfied else "VIOLATED"
        return (
            f"makespan={self.makespan:.6g} lower_bound={self.lower_bound:.6g} "
            f"ratio={self.ratio:.4f} guarantee={self.guarantee:.1f} [{status}]"
        )


def certify(
    makespan: float,
    specs: Sequence[OperatorSpec],
    degrees: Mapping[str, int],
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    guarantee: float | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    *,
    total_capacity: float | None = None,
) -> BoundCertificate:
    """Build a :class:`BoundCertificate` for a schedule of ``specs``.

    ``guarantee`` defaults to Theorem 5.1(a)'s ``2d + 1`` for the
    operators' dimensionality.  ``total_capacity`` generalizes the
    congestion denominator as in :func:`lower_bound`.
    """
    if makespan < 0.0:
        raise SchedulingError(f"makespan must be >= 0, got {makespan}")
    lb = lower_bound(
        specs, degrees, p, comm, overlap, policy, total_capacity=total_capacity
    )
    if guarantee is None:
        d = specs[0].d if specs else 1
        guarantee = theorem51_fixed_degree_bound(d)
    if lb <= 0.0:
        ratio = 1.0 if makespan <= 0.0 else float("inf")
    else:
        ratio = makespan / lb
    return BoundCertificate(
        makespan=makespan, lower_bound=lb, ratio=ratio, guarantee=guarantee
    )
