"""Multi-dimensional work vectors (Section 4.1 / 5.1 of the paper).

A *work vector* describes the resource requirements of a query operator (or
operator clone) on a site comprising ``d`` preemptable resources: component
``i`` is the effective time for which resource ``i`` is kept busy.  The
paper's notation and this module's vocabulary:

* ``l(W)`` — the *length* of a vector, its maximum component
  (:meth:`WorkVector.length`).
* ``l(S)`` — the length of a *set* of vectors, the maximum component of
  their vector sum (:func:`set_length`).
* *processing area* ``W_p(op)`` — the sum of the components
  (:meth:`WorkVector.total`), i.e. the total work performed on a single
  site with all operands locally resident.

Vectors are immutable value objects; all arithmetic returns new instances.
Components are plain floats (seconds, in the experimental cost model), and
negative components are rejected, matching the "positive d-dimensional
vectors" of the vector-packing formulation in Section 5.3.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from enum import IntEnum

from repro.exceptions import InvalidWorkVectorError

__all__ = [
    "Resource",
    "DEFAULT_DIMENSIONALITY",
    "WorkVector",
    "vector_sum",
    "set_length",
    "dominates",
]


class Resource(IntEnum):
    """Fixed numbering of the resources of a site (Section 4.1).

    The paper assumes "a fixed numbering of system resources for all
    sites".  The experimental testbed of Section 6 uses three-dimensional
    sites with one CPU, one disk unit, and one network interface; this
    enumeration fixes that layout.  Higher-dimensional sites are supported
    by the rest of the library (any ``d >= 1``), in which case indices
    beyond :attr:`NETWORK` are anonymous.
    """

    CPU = 0
    DISK = 1
    NETWORK = 2


#: Dimensionality of the experimental testbed of Section 6 (CPU, disk,
#: network interface).
DEFAULT_DIMENSIONALITY = 3


class WorkVector:
    """An immutable ``d``-dimensional vector of non-negative work amounts.

    Parameters
    ----------
    components:
        The per-resource work amounts.  Must be non-empty, finite and
        non-negative.

    Examples
    --------
    >>> w = WorkVector([10.0, 15.0, 0.0])
    >>> w.length()          # l(W), the maximum component
    15.0
    >>> w.total()           # the processing area, sum of components
    25.0
    >>> (w + w).components
    (20.0, 30.0, 0.0)
    >>> (w / 2).components
    (5.0, 7.5, 0.0)
    """

    __slots__ = ("_components", "_length", "_total")

    def __init__(self, components: Iterable[float]):
        comps = tuple(float(c) for c in components)
        if not comps:
            raise InvalidWorkVectorError("work vector must have at least one component")
        for i, c in enumerate(comps):
            if not math.isfinite(c):
                raise InvalidWorkVectorError(
                    f"work vector component {i} is not finite: {c!r}"
                )
            if c < 0.0:
                raise InvalidWorkVectorError(
                    f"work vector component {i} is negative: {c!r}"
                )
        self._components = comps
        self._length = max(comps)
        self._total = math.fsum(comps)

    @classmethod
    def _from_trusted(cls, comps: tuple[float, ...]) -> "WorkVector":
        """Construct from an already-validated tuple of floats.

        Internal fast path for hot loops (site load snapshots, arithmetic
        on vectors whose components are known finite and non-negative);
        skips the per-component validation of :meth:`__init__`.
        """
        self = cls.__new__(cls)
        self._components = comps
        self._length = max(comps)
        self._total = math.fsum(comps)
        return self

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, d: int) -> "WorkVector":
        """Return the ``d``-dimensional zero vector."""
        if d < 1:
            raise InvalidWorkVectorError(f"dimensionality must be >= 1, got {d}")
        return cls._from_trusted((0.0,) * d)

    @classmethod
    def unit(cls, d: int, axis: int, value: float = 1.0) -> "WorkVector":
        """Return a ``d``-dimensional vector with ``value`` on one axis.

        Parameters
        ----------
        d:
            Dimensionality of the vector.
        axis:
            Index of the only non-zero component; accepts a plain ``int``
            or a :class:`Resource` member.
        value:
            Amount of work on ``axis``.
        """
        if d < 1:
            raise InvalidWorkVectorError(f"dimensionality must be >= 1, got {d}")
        if not 0 <= axis < d:
            raise InvalidWorkVectorError(
                f"axis {axis} out of range for dimensionality {d}"
            )
        comps = [0.0] * d
        comps[axis] = value
        return cls(comps)

    @classmethod
    def of(cls, *components: float) -> "WorkVector":
        """Convenience constructor: ``WorkVector.of(1.0, 2.0, 0.5)``."""
        return cls(components)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def components(self) -> tuple[float, ...]:
        """The per-resource work amounts as an immutable tuple."""
        return self._components

    @property
    def d(self) -> int:
        """Dimensionality of the vector (number of resources per site)."""
        return len(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, index: int) -> float:
        return self._components[index]

    def __iter__(self) -> Iterator[float]:
        return iter(self._components)

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Return ``l(W)``, the maximum component (Section 5.1).

        Cached at construction (vectors are immutable), so repeated calls
        in the list-scheduling sort/placement loops are O(1).
        """
        return self._length

    def total(self) -> float:
        """Return the sum of the components.

        For a full (zero-communication) operator work vector this is the
        *processing area* ``W_p(op)`` of Section 4.2.  Cached at
        construction, like :meth:`length`.
        """
        return self._total

    def argmax(self) -> int:
        """Return the index of the maximum component (ties: lowest index)."""
        comps = self._components
        best = 0
        for i in range(1, len(comps)):
            if comps[i] > comps[best]:
                best = i
        return best

    def is_zero(self, tolerance: float = 0.0) -> bool:
        """Return ``True`` when every component is ``<= tolerance``."""
        return self._length <= tolerance

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "WorkVector") -> None:
        if not isinstance(other, WorkVector):
            raise TypeError(f"expected WorkVector, got {type(other).__name__}")
        if other.d != self.d:
            raise InvalidWorkVectorError(
                f"dimensionality mismatch: {self.d} vs {other.d}"
            )

    def __add__(self, other: "WorkVector") -> "WorkVector":
        self._check_compatible(other)
        return WorkVector(a + b for a, b in zip(self._components, other._components))

    def __sub__(self, other: "WorkVector") -> "WorkVector":
        """Componentwise difference; clamps tiny negative round-off to zero.

        A genuinely negative result (beyond floating-point noise) raises
        :class:`InvalidWorkVectorError`, since work vectors are positive by
        definition.
        """
        self._check_compatible(other)
        out = []
        for i, (a, b) in enumerate(zip(self._components, other._components)):
            c = a - b
            if c < 0.0:
                if c < -1e-9 * max(1.0, abs(a), abs(b)):
                    raise InvalidWorkVectorError(
                        f"subtraction yields negative component {i}: {a} - {b}"
                    )
                c = 0.0
            out.append(c)
        return WorkVector(out)

    def __mul__(self, scalar: float) -> "WorkVector":
        scalar = float(scalar)
        if scalar < 0.0:
            raise InvalidWorkVectorError(f"cannot scale by negative factor {scalar}")
        return WorkVector(c * scalar for c in self._components)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "WorkVector":
        scalar = float(scalar)
        if scalar <= 0.0:
            raise InvalidWorkVectorError(f"cannot divide by non-positive {scalar}")
        return WorkVector(c / scalar for c in self._components)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def dominates(self, other: "WorkVector") -> bool:
        """Componentwise ``>=`` (the paper's ``other <=_d self``).

        Used by the malleable-scheduling extension of Section 7, whose only
        requirement on the communication model is that work vectors are
        non-decreasing in the degree of parallelism.
        """
        self._check_compatible(other)
        return all(a >= b for a, b in zip(self._components, other._components))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkVector):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def isclose(self, other: "WorkVector", rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
        """Componentwise :func:`math.isclose` comparison."""
        self._check_compatible(other)
        return all(
            math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
            for a, b in zip(self._components, other._components)
        )

    def __repr__(self) -> str:
        comps = ", ".join(f"{c:g}" for c in self._components)
        return f"WorkVector([{comps}])"


def vector_sum(vectors: Iterable[WorkVector], d: int | None = None) -> WorkVector:
    """Return the componentwise sum of ``vectors``.

    Parameters
    ----------
    vectors:
        The vectors to add.  All must share the same dimensionality.
    d:
        Dimensionality to assume when ``vectors`` is empty.  Required in
        that case; ignored otherwise.
    """
    acc: list[float] | None = None
    for w in vectors:
        if acc is None:
            acc = list(w.components)
        else:
            if len(acc) != w.d:
                raise InvalidWorkVectorError(
                    f"dimensionality mismatch in vector_sum: {len(acc)} vs {w.d}"
                )
            for i, c in enumerate(w.components):
                acc[i] += c
    if acc is None:
        if d is None:
            raise InvalidWorkVectorError(
                "vector_sum of an empty collection requires explicit dimensionality"
            )
        return WorkVector.zeros(d)
    return WorkVector(acc)


def set_length(vectors: Iterable[WorkVector], d: int | None = None) -> float:
    """Return ``l(S)``: the maximum component of the sum of ``vectors``.

    This is the paper's length of a set of work vectors (Section 5.1) and
    the quantity the bin-design formulation of Section 5.3 minimizes (the
    required common bin capacity).
    """
    vectors = list(vectors)
    if not vectors:
        if d is None:
            raise InvalidWorkVectorError(
                "set_length of an empty collection requires explicit dimensionality"
            )
        return 0.0
    return vector_sum(vectors).length()


def dominates(a: WorkVector, b: WorkVector) -> bool:
    """Return ``True`` when ``a`` componentwise dominates ``b``."""
    return a.dominates(b)


def as_work_vector(value: WorkVector | Sequence[float]) -> WorkVector:
    """Coerce a sequence of floats into a :class:`WorkVector`."""
    if isinstance(value, WorkVector):
        return value
    return WorkVector(value)
