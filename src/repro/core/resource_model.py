"""Resource usage model for preemptable multi-resource sites (Section 4.1).

Following Ganguly, Hasan and Krishnamurthy [GHK92], the usage of a single
resource by an operator is a pair ``(T, W)``: the resource is freed after
elapsed time ``T`` and is kept busy for effective time ``W`` (so it is busy
``W/T`` of the time, spread uniformly by assumption A3).  The paper extends
this to a site of ``d`` preemptable resources: usage is ``(T_seq, W̄)``
where ``W̄`` is a work vector and the fundamental constraint

    ``max_i W[i]  <=  T_seq(W̄)  <=  sum_i W[i]``

always holds (Figure 2: perfect overlap vs. zero overlap of processing at
the different resources).

The experiments of Section 6 adopt assumption **EA2 (uniform resource
overlapping)**: a single system-wide parameter ``epsilon in [0, 1]``
expresses ``T_seq`` as the convex combination

    ``T(W̄) = epsilon * max_i W[i] + (1 - epsilon) * sum_i W[i]``,

with ``epsilon = 1`` meaning perfect overlap and ``epsilon = 0`` meaning
zero overlap.  :class:`ConvexCombinationOverlap` implements this; the
abstract :class:`OverlapModel` lets users plug in other architectures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import ModelValidationError
from repro.core.work_vector import WorkVector

__all__ = [
    "OverlapModel",
    "ConvexCombinationOverlap",
    "PERFECT_OVERLAP",
    "ZERO_OVERLAP",
    "ResourceUsage",
    "validate_sequential_time",
]


def validate_sequential_time(t_seq: float, work: WorkVector, tolerance: float = 1e-9) -> None:
    """Check the fundamental bound ``l(W) <= T_seq <= sum(W)`` (Section 4.1).

    Raises
    ------
    ModelValidationError
        If the bound is violated beyond floating-point ``tolerance``.
    """
    lo = work.length()
    hi = work.total()
    slack = tolerance * max(1.0, hi)
    if t_seq < lo - slack or t_seq > hi + slack:
        raise ModelValidationError(
            f"sequential time {t_seq} outside [max W, sum W] = [{lo}, {hi}]"
        )


class OverlapModel(ABC):
    """Maps a work vector to the stand-alone sequential time ``T_seq(W̄)``.

    The amount of overlap achievable between processing at different
    resources of a site is a system parameter (hardware/software
    architecture, operator implementation); subclasses encode one policy.
    Implementations must respect the Section 4.1 constraint
    ``l(W) <= T_seq(W) <= sum(W)``; :meth:`t_seq` enforces it.
    """

    @abstractmethod
    def _t_seq_unchecked(self, work: WorkVector) -> float:
        """Compute ``T_seq(W̄)`` without the validity check."""

    def t_seq(self, work: WorkVector) -> float:
        """Return the sequential execution time for ``work``.

        The result is validated against the fundamental Section 4.1 bound
        so that a buggy subclass cannot silently corrupt schedules.
        """
        t = self._t_seq_unchecked(work)
        validate_sequential_time(t, work)
        return t

    def usage(self, work: WorkVector) -> "ResourceUsage":
        """Return the full ``(T_seq, W̄)`` usage pair for ``work``."""
        return ResourceUsage(t_seq=self.t_seq(work), work=work)

    def t_seq_batch(self, works: "list[WorkVector]") -> list[float]:
        """Vectorization hook: ``T_seq`` for many work vectors at once.

        The default simply loops :meth:`t_seq`.  Overrides (used by the
        batched shelf packer) must stay **bit-identical** to the scalar
        method for every input — callers rely on that for golden-packing
        determinism.
        """
        return [self.t_seq(w) for w in works]


@dataclass(frozen=True)
class ConvexCombinationOverlap(OverlapModel):
    """Assumption EA2: ``T(W) = eps * max_i W[i] + (1 - eps) * sum_i W[i]``.

    Parameters
    ----------
    epsilon:
        Overlap parameter in ``[0, 1]``.  Small values imply limited
        overlap (resources used mostly serially); values close to 1 imply
        a large degree of overlap.  The paper's experiments vary epsilon
        between 0.1 and 0.7.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ModelValidationError(
                f"overlap parameter must lie in [0, 1], got {self.epsilon}"
            )

    def _t_seq_unchecked(self, work: WorkVector) -> float:
        eps = self.epsilon
        return eps * work.length() + (1.0 - eps) * work.total()

    def t_seq_batch(self, works: "list[WorkVector]") -> list[float]:
        """Vectorized EA2 evaluation, bit-identical to :meth:`t_seq`.

        ``eps·l + (1-eps)·total`` element-wise in float64 performs the
        exact same IEEE multiply/multiply/add sequence as the scalar
        method, so results match bit for bit (the lengths/totals are the
        vectors' cached exact statistics).  Validation is skipped: the
        convex combination satisfies ``l(W) <= T <= sum(W)`` by
        construction for ``eps in [0, 1]``.
        """
        from repro.core import batch as _batch  # deferred: avoids an import cycle

        if not (_batch.HAVE_NUMPY and len(works) >= _batch.NUMPY_CUTOVER):
            return [self.t_seq(w) for w in works]
        np = _batch._np
        eps = self.epsilon
        lens = np.fromiter((w.length() for w in works), dtype=np.float64, count=len(works))
        tots = np.fromiter((w.total() for w in works), dtype=np.float64, count=len(works))
        return (eps * lens + (1.0 - eps) * tots).tolist()


#: Perfect overlap (``epsilon = 1``): ``T(W) = max_i W[i]`` (Figure 2a).
PERFECT_OVERLAP = ConvexCombinationOverlap(1.0)

#: Zero overlap (``epsilon = 0``): ``T(W) = sum_i W[i]`` (Figure 2b).
ZERO_OVERLAP = ConvexCombinationOverlap(0.0)


@dataclass(frozen=True)
class ResourceUsage:
    """The ``(T_seq, W̄)`` usage of a ``d``-resource site by an operator.

    Attributes
    ----------
    t_seq:
        Elapsed (sequential, stand-alone) execution time of the operator.
    work:
        The ``d``-dimensional work vector; component ``i`` is the effective
        time resource ``i`` is kept busy (uniformly spread over ``t_seq``
        by assumption A3).
    """

    t_seq: float
    work: WorkVector

    def __post_init__(self) -> None:
        validate_sequential_time(self.t_seq, self.work)

    @property
    def d(self) -> int:
        """Dimensionality of the underlying work vector."""
        return self.work.d

    def utilization(self, resource: int) -> float:
        """Fraction of time resource ``resource`` is busy (``W[i]/T_seq``).

        By assumptions A2/A3 this demand rate is constant over the
        operator's execution, which is what makes the effects of resource
        sharing straightforward to quantify (Equation 2).
        """
        if self.t_seq <= 0.0:
            return 0.0
        return self.work[resource] / self.t_seq

    def rate_vector(self) -> tuple[float, ...]:
        """Per-resource demand rates ``W[i] / T_seq`` as a tuple."""
        if self.t_seq <= 0.0:
            return (0.0,) * self.work.d
        return tuple(c / self.t_seq for c in self.work.components)
