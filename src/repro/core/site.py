"""Resource sites and the effects of time-sharing (Equation 2, Section 5.2.2).

A :class:`Site` models one shared-nothing system node: a collection of
``d`` preemptable resources that can be time-shared among the operator
clones mapped to it.  Because all resources are preemptable (assumptions
A2/A3), the execution time for all the clones scheduled at site ``s_j`` is
determined by the ability to overlap the processing of resource requests by
different operators:

    ``T_site(s_j) = max{ max_{W in work(s_j)} T_seq(W),  l(work(s_j)) }``

— either some single clone's stand-alone time dominates (its idle resource
capacity absorbs everyone else's work), or some resource is congested and
the total effective time demanded of it, ``l(work(s_j))``, dominates.

Sites optionally carry a *capacity* (relative speed, default ``1.0``): a
site of capacity ``c`` processes every resource ``c`` times faster, so
its execution time is ``T_site / c`` and placement decisions compare
*capacity-normalized* loads (``length() / capacity``).  Work vectors and
raw load statistics stay in unit-capacity seconds, so all incremental
bookkeeping is untouched; dividing by a capacity of exactly ``1.0`` is a
bit-exact no-op in IEEE-754, which makes the homogeneous paths
byte-identical to the pre-capacity code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.resource_model import OverlapModel
from repro.core.work_vector import WorkVector

__all__ = ["PlacedClone", "Site"]


def _check_capacity(capacity: float, index: int) -> None:
    if not capacity > 0.0 or capacity != capacity or capacity == float("inf"):
        raise SchedulingError(
            f"site {index}: capacity must be a positive finite number, "
            f"got {capacity!r}"
        )


@dataclass(frozen=True)
class PlacedClone:
    """One operator clone resident at a site.

    Attributes
    ----------
    operator:
        Name of the operator this clone belongs to (constraint (A) of
        Section 5.3 forbids two clones of the same operator on one site).
    clone_index:
        Index of this clone within its operator's partitioning
        (``0`` is the coordinator under EA1).
    work:
        The clone's work vector (communication costs included).
    t_seq:
        The clone's stand-alone sequential execution time
        ``T_seq(work)`` under the overlap model in force.
    """

    operator: str
    clone_index: int
    work: WorkVector
    t_seq: float


class Site:
    """A ``d``-resource site accumulating operator clones.

    Tracks the resident clone set ``work(s_j)``, the componentwise load
    vector (sum of resident work vectors), and the Equation (2) site
    execution time.  The per-component load is maintained incrementally so
    the list scheduler's "least filled site" query is O(1).
    """

    __slots__ = (
        "index",
        "_d",
        "_clones",
        "_load",
        "_length",
        "_total_load",
        "_operators",
        "_max_t_seq",
        "_capacity",
    )

    def __init__(self, index: int, d: int, capacity: float = 1.0):
        if index < 0:
            raise SchedulingError(f"site index must be >= 0, got {index}")
        if d < 1:
            raise SchedulingError(f"site dimensionality must be >= 1, got {d}")
        _check_capacity(capacity, index)
        self.index = index
        self._d = d
        self._clones: list[PlacedClone] = []
        self._load = [0.0] * d
        self._length = 0.0
        self._total_load = 0.0
        self._operators: set[str] = set()
        self._max_t_seq = 0.0
        self._capacity = float(capacity)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of resources at this site."""
        return self._d

    @property
    def capacity(self) -> float:
        """Relative speed of this site (``1.0`` = the paper's unit site)."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change this site's capacity in place (the elasticity primitive).

        Resident clones are untouched — only the rate at which the site
        processes them changes, so a capacity change never forces a
        migration by itself.  Callers holding derived state keyed on the
        normalized length (e.g. a :class:`~repro.core.placement_heap.SiteHeap`)
        must re-key the site afterwards.
        """
        _check_capacity(capacity, self.index)
        self._capacity = float(capacity)

    @property
    def clones(self) -> tuple[PlacedClone, ...]:
        """The clones resident at this site, in placement order."""
        return tuple(self._clones)

    @property
    def operators(self) -> frozenset[str]:
        """Names of the operators with a clone at this site."""
        return frozenset(self._operators)

    def __len__(self) -> int:
        return len(self._clones)

    def is_empty(self) -> bool:
        """Return ``True`` when no clone has been placed here."""
        return not self._clones

    def hosts_operator(self, operator: str) -> bool:
        """Return ``True`` when a clone of ``operator`` is already here.

        This is the allowability test of the Figure 3 list-scheduling rule
        (``work(s) ∩ L_i = ∅``).
        """
        return operator in self._operators

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def place(self, clone: PlacedClone) -> None:
        """Place ``clone`` at this site.

        Raises
        ------
        SchedulingError
            If a clone of the same operator is already resident
            (constraint (A)) or the work vector has the wrong
            dimensionality.
        """
        if clone.work.d != self._d:
            raise SchedulingError(
                f"site {self.index}: clone of {clone.operator!r} has d={clone.work.d}, "
                f"site has d={self._d}"
            )
        if clone.operator in self._operators:
            raise SchedulingError(
                f"site {self.index}: already hosts a clone of {clone.operator!r} "
                "(constraint (A) of Section 5.3)"
            )
        self._clones.append(clone)
        self._operators.add(clone.operator)
        load = self._load
        length = self._length
        total = self._total_load
        for i, c in enumerate(clone.work.components):
            updated = load[i] + c
            load[i] = updated
            total += c
            if updated > length:
                length = updated
        self._length = length
        self._total_load = total
        if clone.t_seq > self._max_t_seq:
            self._max_t_seq = clone.t_seq

    def place_batch(self, clones: "list[PlacedClone] | tuple[PlacedClone, ...]") -> None:
        """Place several clones at once (bulk form of :meth:`place`).

        Validates the whole batch up front (dimensionality and
        constraint (A), including duplicates *within* the batch), then
        folds the load updates in placement order with locals hoisted out
        of the loop.  The resulting incremental statistics are
        bit-identical to calling :meth:`place` once per clone; on a
        validation error nothing is mutated.
        """
        d = self._d
        resident = self._operators
        batch_ops: set[str] = set()
        for clone in clones:
            if clone.work.d != d:
                raise SchedulingError(
                    f"site {self.index}: clone of {clone.operator!r} has "
                    f"d={clone.work.d}, site has d={d}"
                )
            if clone.operator in resident or clone.operator in batch_ops:
                raise SchedulingError(
                    f"site {self.index}: already hosts a clone of "
                    f"{clone.operator!r} (constraint (A) of Section 5.3)"
                )
            batch_ops.add(clone.operator)
        load = self._load
        length = self._length
        total = self._total_load
        max_t = self._max_t_seq
        append = self._clones.append
        for clone in clones:
            append(clone)
            for i, c in enumerate(clone.work.components):
                updated = load[i] + c
                load[i] = updated
                total += c
                if updated > length:
                    length = updated
            if clone.t_seq > max_t:
                max_t = clone.t_seq
        resident.update(batch_ops)
        self._length = length
        self._total_load = total
        self._max_t_seq = max_t

    def copy(self) -> "Site":
        """Return an independent site with bit-identical statistics.

        Clones are immutable and shared; the incremental statistics are
        re-folded in the original placement order, so they match the
        source site's exactly.
        """
        fresh = Site(self.index, self._d, self._capacity)
        if self._clones:
            fresh.place_batch(self._clones)
        return fresh

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def load_vector(self) -> WorkVector:
        """Return the componentwise sum of the resident work vectors."""
        return WorkVector._from_trusted(tuple(self._load))

    def load_component(self, resource: int) -> float:
        """Return the total effective time demanded of one resource."""
        return self._load[resource]

    def length(self) -> float:
        """Return ``l(work(s_j))``: the maximum load component.

        This is the quantity the Figure 3 list-scheduling rule minimizes
        when choosing the least filled allowable site.  Maintained
        incrementally on :meth:`place` (loads only grow), so the query
        is O(1) rather than a rescan of the resident clones.
        """
        return self._length

    def normalized_length(self) -> float:
        """Return ``l(work(s_j)) / capacity``: the placement cost.

        This is what the Figure 3 rule minimizes on a heterogeneous
        cluster — the *time* the most congested resource needs at this
        site's speed.  With capacity ``1.0`` the division is a bit-exact
        no-op, so homogeneous placement keys are unchanged.
        """
        return self._length / self._capacity

    def normalized_total_load(self) -> float:
        """Return ``total_load() / capacity`` (the scalar-load placement cost)."""
        return self._total_load / self._capacity

    def resulting_length(self, work: WorkVector) -> float:
        """Return ``l(work(s_j) ∪ {work})``: length after a tentative placement.

        Computed directly off the running load vector in O(d) without
        materializing the tentative sum; used by the
        ``MIN_RESULTING_LENGTH`` ablation rule.
        """
        if work.d != self._d:
            raise SchedulingError(
                f"site {self.index}: tentative vector has d={work.d}, site has d={self._d}"
            )
        return max(a + b for a, b in zip(self._load, work.components))

    def normalized_resulting_length(self, work: WorkVector) -> float:
        """Return :meth:`resulting_length` divided by this site's capacity."""
        return self.resulting_length(work) / self._capacity

    def total_load(self) -> float:
        """Return the sum of all load components (scalar total work).

        Maintained incrementally; used as the deterministic tie-break of
        the list-scheduling rule and by scalar (1-D) baselines.
        """
        return self._total_load

    def max_t_seq(self) -> float:
        """Return ``max_{W in work(s_j)} T_seq(W)`` over resident clones."""
        return self._max_t_seq

    def t_site(self) -> float:
        """Equation (2): execution time for all clones at this site.

        ``T_site = max{ max T_seq, l(work(s_j)) } / capacity`` — the
        larger of the slowest resident clone's stand-alone time and the
        most congested resource's total demand, scaled by the site's
        speed.  Dividing by the default capacity ``1.0`` is bit-exact,
        so homogeneous makespans are unchanged.
        """
        if not self._clones:
            return 0.0
        return max(self._max_t_seq, self.length()) / self._capacity

    def unit_t_site(self) -> float:
        """Equation (2) at unit capacity: ``max{ max T_seq, l(work) }``.

        The capacity-independent site time — what :meth:`t_site` returns
        on a unit site.  The simulator runs its fault-free event loops in
        this raw time base and scales the result by ``1 / capacity``.
        """
        if not self._clones:
            return 0.0
        return max(self._max_t_seq, self.length())

    def utilization(self) -> tuple[float, ...]:
        """Per-resource utilization ``(load[i] / capacity) / T_site`` (zeros when idle)."""
        t = self.t_site()
        if t <= 0.0:
            return (0.0,) * self._d
        return tuple((c / self._capacity) / t for c in self._load)

    def recompute_t_seq(self, overlap: OverlapModel) -> "Site":
        """Return a copy of this site with clone times re-derived.

        Useful for sensitivity analysis: re-evaluate an existing placement
        under a different overlap model without re-running the scheduler.
        """
        fresh = Site(self.index, self._d, self._capacity)
        for clone in self._clones:
            fresh.place(
                PlacedClone(
                    operator=clone.operator,
                    clone_index=clone.clone_index,
                    work=clone.work,
                    t_seq=overlap.t_seq(clone.work),
                )
            )
        return fresh

    def __repr__(self) -> str:
        return (
            f"Site(index={self.index}, clones={len(self._clones)}, "
            f"l={self.length() if self._clones else 0.0:.6g}, "
            f"t_site={self.t_site():.6g})"
        )
