"""A lazy min-heap over sites for O(log p) least-loaded placement.

The Figure 3 list-scheduling rule repeatedly asks for the *least filled
allowable* site: the site minimizing a small key (current length, plus
deterministic tie-breakers ending in the site index) among the sites not
already hosting a clone of the operator being placed.  A linear rescan of
all ``p`` sites per clone makes the packing loop O(n·p); this module
replaces it with a heap using *lazy deletion*:

* every site has exactly one *current* key, cached in ``_keys``;
* placing a clone on a site grows its key, so the caller re-pushes the
  fresh key via :meth:`SiteHeap.update`; the superseded entry stays in the
  heap and is recognized as stale (its key no longer matches the cache)
  and discarded when popped;
* an entry that is fresh but not *allowable* for the current operator
  (constraint (A): the site already hosts a clone of it) is set aside and
  re-pushed after the selection, costing O(log p) per clone of the same
  operator already placed — at most ``N_i - 1`` per placement.

Long-running incremental use (the rescheduling layer keeps a heap alive
across many repair deltas) adds two maintenance operations:
:meth:`SiteHeap.discard_batch` lazily untracks sites (their queued
entries become stale) and :meth:`SiteHeap.rebuild` compacts the heap to
exactly one fresh entry per live site.  :meth:`SiteHeap.update` triggers
:meth:`SiteHeap.rebuild` automatically once the entry count exceeds
``max(32, 3·live sites)``, so lazy-deletion garbage stays bounded by a
constant factor regardless of how many updates and discards a session
performs.

Because every key tuple ends in the site index, the heap minimum is the
unique minimizer the linear scan would have found, so packings produced
through the heap are bit-identical to the rescanning reference
implementation (asserted by the golden tests).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence

from repro.core.site import Site

__all__ = ["SiteHeap", "least_loaded_key"]


def least_loaded_key(site: Site) -> tuple[float, int]:
    """The canonical Figure 3 heap key: ``(l(work(s))/capacity, index)``.

    Capacity-normalized so a fast site absorbs proportionally more work
    on a heterogeneous cluster; on a homogeneous one the division by
    ``1.0`` is bit-exact and the key equals the historical
    ``(length, index)`` tuple.  Lazy-deletion semantics are unaffected:
    capacities are fixed during a packing pass, so keys still only grow
    as clones are placed (callers that *do* resize a site mid-session —
    the rescheduling layer — re-key it via :meth:`SiteHeap.update`).
    """
    return (site.normalized_length(), site.index)


class SiteHeap:
    """Lazy min-heap of sites keyed by a caller-supplied key function.

    Parameters
    ----------
    sites:
        The sites to track (any sequence; indices need not be dense, the
        heap keys carry the identity).
    key:
        Maps a site to a totally ordered tuple whose *last* element must
        be the site index (the deterministic tie-breaker).  Keys must be
        non-decreasing over time: placing work on a site may only grow
        its key.

    Attributes
    ----------
    scans:
        Number of heap entries examined (popped) so far — the heap-based
        analogue of "sites scanned" in the linear reference rule, exposed
        for the placement-scan instrumentation counters.
    """

    __slots__ = ("_key", "_heap", "_keys", "_sites", "scans")

    def __init__(self, sites: Sequence[Site], key: Callable[[Site], tuple]):
        self._key = key
        self._sites = {site.index: site for site in sites}
        self._keys = {site.index: key(site) for site in sites}
        self._heap = [(k, j) for j, k in self._keys.items()]
        heapq.heapify(self._heap)
        self.scans = 0

    def __len__(self) -> int:
        return len(self._sites)

    def pick(self, allowable: Callable[[Site], bool]) -> Site | None:
        """Pop the minimum-key site satisfying ``allowable``.

        Fresh-but-unallowable entries are retained (re-pushed before
        returning); stale entries are discarded.  Returns ``None`` when
        no allowable site exists.  The caller must follow a successful
        pick with :meth:`update` after mutating the chosen site.
        """
        heap = self._heap
        keys = self._keys
        skipped: list[tuple[tuple, int]] = []
        chosen: Site | None = None
        while heap:
            entry = heapq.heappop(heap)
            self.scans += 1
            k, j = entry
            if k != keys.get(j):
                # Stale: a fresher entry for j is (or was) queued, or the
                # site was discarded since this entry was pushed.
                continue
            site = self._sites[j]
            if allowable(site):
                chosen = site
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(heap, entry)
        return chosen

    def update(self, site: Site) -> None:
        """Re-key ``site`` after its load changed and queue the fresh entry.

        Also serves as the (re-)tracking entry point: updating a site the
        heap does not currently know adds it.  When the queued-entry
        count exceeds ``max(32, 3·live sites)`` the heap is compacted via
        :meth:`rebuild`, bounding lazy-deletion garbage during long
        incremental runs.
        """
        k = self._key(site)
        self._sites[site.index] = site
        self._keys[site.index] = k
        heapq.heappush(self._heap, (k, site.index))
        if len(self._heap) > max(32, 3 * len(self._sites)):
            self.rebuild()

    def add_batch(self, sites: Sequence[Site]) -> None:
        """Track (or re-track) several sites — e.g. restored after a fault."""
        for site in sites:
            self.update(site)

    def discard_batch(self, site_indices: Sequence[int]) -> None:
        """Stop tracking the given sites (lazy; unknown indices are ignored).

        Their queued entries are *not* removed eagerly — they are
        recognized as stale (no cached key) and dropped when popped, or
        swept out wholesale by the next :meth:`rebuild`.
        """
        for j in site_indices:
            self._sites.pop(j, None)
            self._keys.pop(j, None)

    def rebuild(self) -> None:
        """Compact to exactly one fresh entry per live site (O(p)).

        Discards all stale and discarded-site garbage at once; the heap
        order afterwards is identical to a freshly constructed heap over
        the currently tracked sites.
        """
        self._heap = [(k, j) for j, k in self._keys.items()]
        heapq.heapify(self._heap)

    def tracked_sites(self) -> frozenset[int]:
        """Indices of the sites currently tracked (live, not discarded)."""
        return frozenset(self._sites)
