"""The TREESCHEDULE algorithm (Section 5.4, Figure 4).

Scheduling an arbitrary query task tree must respect the blocking
constraints of the plan.  TREESCHEDULE splits the task tree into
synchronized MinShelf phases (deepest level first) and calls
OPERATORSCHEDULE on the operators of each phase:

* **floating** operators (scans and builds) are parallelized by the
  coarse-grain rule and packed by the list-scheduling heuristic;
* **rooted** operators inherit data-placement constraints from earlier
  phases: the probe of a hash join must execute at the home of its build,
  because the (memory-resident) hash table lives there.

One modelling refinement (documented in DESIGN.md): the coarse-grain
degree of a *build* is computed on the combined build + probe stage
(work vectors and data volumes summed).  The home chosen for the build is
the home the probe inherits, so the granularity trade-off that matters is
the whole join stage's computation-to-communication ratio; sizing the
build by its own (small) processing area alone would throttle the — much
heavier — probe to a handful of sites and is not what a parallel hash
join does physically (both inputs are partitioned by the same hash
function across the same sites [DGS+90, Sch90]).

The phase walk itself (classify floating vs. rooted, apply the join-stage
granularity rule, pack each shelf) lives in
:func:`repro.engine.driver.schedule_phases`; TREESCHEDULE is that driver
with its default packer, the Figure 3 multi-dimensional list rule.

The response time of the resulting :class:`~repro.core.schedule.PhasedSchedule`
is the sum of the per-phase Equation (3) makespans.  Proposition 5.2:
TREESCHEDULE runs in ``O(J P (J + log P))`` time for a ``J``-node plan.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.cloning import DEFAULT_COORDINATOR_POLICY, CoordinatorPolicy
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.engine.driver import SHELF_POLICIES, schedule_phases
from repro.engine.metrics import MetricsRecorder
from repro.engine.registry import ScheduleRequest, register
from repro.engine.result import ScheduleResult
from repro.obs.tracer import current_tracer
from repro.plans.generator import GeneratedQuery
from repro.plans.operator_tree import OperatorTree
from repro.plans.task_tree import TaskTree

__all__ = ["SHELF_POLICIES", "TreeScheduleResult", "tree_schedule"]

#: Historical alias: TREESCHEDULE now returns the engine-wide result type.
TreeScheduleResult = ScheduleResult


def tree_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    metrics: MetricsRecorder | None = None,
    capacities: "Sequence[float] | None" = None,
) -> ScheduleResult:
    """Schedule a bushy plan's operator tree in synchronized phases.

    Parameters
    ----------
    op_tree:
        The macro-expanded, *cost-annotated* operator tree (every
        operator must carry an :class:`~repro.core.cloning.OperatorSpec`;
        see :func:`repro.cost.annotate.annotate_plan`).
    task_tree:
        The corresponding query task tree.
    p:
        Number of system sites.
    comm:
        Communication-cost model.
    overlap:
        Overlap model for sequential times.
    f:
        Granularity parameter of the coarse-grain restriction.
    shelf:
        Phase-decomposition policy: ``"min"`` (MinShelf, the paper's
        choice — tasks as late as possible) or ``"eager"`` (tasks as
        early as possible; see :func:`repro.plans.phases.eager_shelf_phases`).
    policy:
        Startup charging policy (EA1 default).
    metrics:
        Optional :class:`~repro.engine.metrics.MetricsRecorder` for
        construction-time instrumentation.
    capacities:
        Optional per-site capacities for a heterogeneous cluster
        (``None`` or all 1.0 keeps the byte-identical homogeneous path).

    Returns
    -------
    ScheduleResult

    Raises
    ------
    SchedulingError
        If a probe's build has not been scheduled by the time the probe's
        phase is reached (would indicate a malformed task tree).
    """
    with current_tracer().span("tree_schedule", p=p, f=f, shelf=shelf):
        return schedule_phases(
            op_tree,
            task_tree,
            p=p,
            comm=comm,
            overlap=overlap,
            f=f,
            shelf=shelf,
            policy=policy,
            algorithm="treeschedule",
            metrics=metrics,
            capacities=capacities,
        )


@register(
    "treeschedule",
    description="Section 5.4 TREESCHEDULE: MinShelf phases + "
    "multi-dimensional list packing with the coarse-grain rule",
)
def _treeschedule(query: GeneratedQuery, request: ScheduleRequest) -> ScheduleResult:
    assert request.policy is not None
    return tree_schedule(
        query.operator_tree,
        query.task_tree,
        p=request.p,
        comm=request.comm,
        overlap=request.overlap,
        f=request.f,
        policy=request.policy,
        metrics=request.metrics,
        capacities=request.capacities,
    )
