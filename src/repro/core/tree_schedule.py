"""The TREESCHEDULE algorithm (Section 5.4, Figure 4).

Scheduling an arbitrary query task tree must respect the blocking
constraints of the plan.  TREESCHEDULE splits the task tree into
synchronized MinShelf phases (deepest level first) and calls
OPERATORSCHEDULE on the operators of each phase:

* **floating** operators (scans and builds) are parallelized by the
  coarse-grain rule and packed by the list-scheduling heuristic;
* **rooted** operators inherit data-placement constraints from earlier
  phases: the probe of a hash join must execute at the home of its build,
  because the (memory-resident) hash table lives there.

One modelling refinement (documented in DESIGN.md): the coarse-grain
degree of a *build* is computed on the combined build + probe stage
(work vectors and data volumes summed).  The home chosen for the build is
the home the probe inherits, so the granularity trade-off that matters is
the whole join stage's computation-to-communication ratio; sizing the
build by its own (small) processing area alone would throttle the — much
heavier — probe to a handful of sites and is not what a parallel hash
join does physically (both inputs are partitioned by the same hash
function across the same sites [DGS+90, Sch90]).

The response time of the resulting :class:`~repro.core.schedule.PhasedSchedule`
is the sum of the per-phase Equation (3) makespans.  Proposition 5.2:
TREESCHEDULE runs in ``O(J P (J + log P))`` time for a ``J``-node plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import (
    RootedPlacement,
    operator_schedule,
)
from repro.core.resource_model import OverlapModel
from repro.core.schedule import OperatorHome, PhasedSchedule
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import eager_shelf_phases, min_shelf_phases
from repro.plans.physical_ops import OperatorKind, anchor_operator_name
from repro.plans.task_tree import TaskTree

#: Shelf (phase-decomposition) policies accepted by :func:`tree_schedule`.
SHELF_POLICIES = {
    "min": min_shelf_phases,
    "eager": eager_shelf_phases,
}

__all__ = ["TreeScheduleResult", "tree_schedule"]


@dataclass
class TreeScheduleResult:
    """Outcome of one TREESCHEDULE run.

    Attributes
    ----------
    phased_schedule:
        Per-phase schedules in execution order; total response time is
        the sum of phase makespans.
    homes:
        Final home of every operator (used by dependent phases, exposed
        for inspection and testing).
    degrees:
        Chosen degree of partitioned parallelism per operator.
    phase_labels:
        Task ids scheduled in each phase.
    """

    phased_schedule: PhasedSchedule
    homes: dict[str, OperatorHome]
    degrees: dict[str, int]
    phase_labels: list[str]

    @property
    def response_time(self) -> float:
        """The plan's total (summed-phase) response time."""
        return self.phased_schedule.response_time()

    @property
    def num_phases(self) -> int:
        """Number of synchronized phases."""
        return self.phased_schedule.num_phases


def tree_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    shelf: str = "min",
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> TreeScheduleResult:
    """Schedule a bushy plan's operator tree in synchronized phases.

    Parameters
    ----------
    op_tree:
        The macro-expanded, *cost-annotated* operator tree (every
        operator must carry an :class:`~repro.core.cloning.OperatorSpec`;
        see :func:`repro.cost.annotate.annotate_plan`).
    task_tree:
        The corresponding query task tree.
    p:
        Number of system sites.
    comm:
        Communication-cost model.
    overlap:
        Overlap model for sequential times.
    f:
        Granularity parameter of the coarse-grain restriction.
    shelf:
        Phase-decomposition policy: ``"min"`` (MinShelf, the paper's
        choice — tasks as late as possible) or ``"eager"`` (tasks as
        early as possible; see :func:`repro.plans.phases.eager_shelf_phases`).
    policy:
        Startup charging policy (EA1 default).

    Returns
    -------
    TreeScheduleResult

    Raises
    ------
    SchedulingError
        If a probe's build has not been scheduled by the time the probe's
        phase is reached (would indicate a malformed task tree).
    """
    try:
        shelf_fn = SHELF_POLICIES[shelf]
    except KeyError:
        raise SchedulingError(
            f"unknown shelf policy {shelf!r}; expected one of {sorted(SHELF_POLICIES)}"
        ) from None
    phases = shelf_fn(task_tree)
    phased = PhasedSchedule()
    homes: dict[str, OperatorHome] = {}
    degrees: dict[str, int] = {}
    labels: list[str] = []

    for phase_tasks in phases:
        floating = []
        rooted = []
        forced_degrees: dict[str, int] = {}
        for task in phase_tasks:
            for op in task.operators:
                spec = op.require_spec()
                if op.kind is OperatorKind.BUILD:
                    # Size the build by the whole join stage: the probe
                    # will be rooted at this home in a later phase.
                    probe_spec = op_tree.probe_of(op.join_id).require_spec()
                    stage = OperatorSpec(
                        name=f"stage({op.join_id})",
                        work=spec.work + probe_spec.work,
                        data_volume=spec.data_volume + probe_spec.data_volume,
                    )
                    forced_degrees[spec.name] = coarse_grain_degree(
                        stage, p, f, comm, overlap, policy
                    )
                    floating.append(spec)
                elif (anchor := anchor_operator_name(op)) is not None:
                    # Probes run at their builds' homes (hash tables);
                    # rescans at their stores' homes (materialized pages).
                    try:
                        anchor_home = homes[anchor]
                    except KeyError:
                        raise SchedulingError(
                            f"{op.name!r} scheduled before its anchor "
                            f"{anchor!r}; task tree is inconsistent"
                        ) from None
                    rooted.append(
                        RootedPlacement(
                            spec=spec, site_indices=anchor_home.site_indices
                        )
                    )
                else:
                    floating.append(spec)
        result = operator_schedule(
            floating,
            rooted,
            p=p,
            comm=comm,
            overlap=overlap,
            f=f,
            degrees=forced_degrees,
            policy=policy,
        )
        label = ",".join(task.task_id for task in phase_tasks)
        phased.append(result.schedule, label)
        labels.append(label)
        homes.update(result.schedule.homes())
        degrees.update(result.degrees)

    return TreeScheduleResult(
        phased_schedule=phased,
        homes=homes,
        degrees=degrees,
        phase_labels=labels,
    )
