"""Incremental rescheduling: repair an existing schedule after a delta.

The paper's schedulers are *offline*: they pack a fixed set of clones
onto a fixed set of sites.  At the scale this kernel layer targets
(``n = 10^4`` operators over ``p = 10^3`` sites) a site failure mid-run
should not force a cold re-pack of the whole shelf — the repair only
has to move the clones the event actually displaced.

A :class:`ScheduleDelta` names what changed: sites removed from service
(failed), sites restored (recovered), operators withdrawn, and new clone
items appended.  :func:`reschedule_schedule` applies the delta to a
:class:`~repro.core.schedule.Schedule` *in place*:

1. failed sites are drained (their clones become pending again) and
   disabled, recovered sites are re-enabled, withdrawn operators are
   removed wherever they reside;
2. the pending clones — displaced plus newly added — are re-sorted with
   the usual :class:`~repro.core.vector_packing.SortKey` and placed on
   the *enabled* sites only, through the same lazy
   :class:`~repro.core.placement_heap.SiteHeap` rule the shelf packer
   uses (so repair cost is O(moved · log p), not O(n · p)).

Determinism: the repaired schedule is byte-identical to
:func:`reschedule_reference` — a naive oracle that replays the surviving
placements onto a fresh schedule and packs the pending clones with the
rescanning reference rule — asserted by the golden reschedule tests.
For an append-only delta under ``SortKey.INPUT_ORDER`` the repair also
equals cold-packing the concatenated item list, which pins down the
"repair == re-pack of the mutated input" contract exactly.

Only deterministic placement rules are supported: ``ROUND_ROBIN`` and
``RANDOM`` carry hidden state (cursor position, RNG stream) that a
repair cannot reconstruct, so they are rejected.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.placement_heap import SiteHeap
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone
from repro.core.vector_packing import (
    CloneItem,
    PlacementRule,
    SortKey,
    _no_allowable_site,
    _reference_site_length,
    _sorted_items,
)
from repro.obs.tracer import current_tracer

__all__ = [
    "ScheduleDelta",
    "RescheduleStats",
    "reschedule_schedule",
    "reschedule_reference",
]


@dataclass(frozen=True)
class ScheduleDelta:
    """One repair event against a single phase of a schedule.

    Attributes
    ----------
    remove_sites:
        Sites taken out of service; their resident clones are displaced
        and must be re-placed elsewhere.
    restore_sites:
        Previously disabled sites returned to service (eligible for
        placements again; nothing is proactively migrated onto them).
    remove_operators:
        Operators withdrawn entirely (e.g. a cancelled query); their
        clones are dropped, not re-placed.
    add_items:
        New clone items appended to the phase.
    set_capacities:
        ``(site_index, new_capacity)`` pairs — the elasticity primitive.
        A capacity change is *in-place*: resident clones stay where they
        are (their raw loads are capacity-independent), only the site's
        time contribution and its attractiveness to subsequent
        placements change.  Mid-serve scale-up/down therefore costs
        O(moved · log p) for whatever the same delta displaces, never a
        cold re-pack.
    phase_index:
        Which phase of a :class:`~repro.core.schedule.PhasedSchedule`
        the delta applies to (0 for single-phase schedules).
    """

    remove_sites: tuple[int, ...] = ()
    restore_sites: tuple[int, ...] = ()
    remove_operators: tuple[str, ...] = ()
    add_items: tuple[CloneItem, ...] = ()
    set_capacities: tuple[tuple[int, float], ...] = ()
    phase_index: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "remove_sites", tuple(self.remove_sites))
        object.__setattr__(self, "restore_sites", tuple(self.restore_sites))
        object.__setattr__(self, "remove_operators", tuple(self.remove_operators))
        object.__setattr__(self, "add_items", tuple(self.add_items))
        object.__setattr__(
            self,
            "set_capacities",
            tuple((int(j), float(c)) for j, c in self.set_capacities),
        )
        resized = [j for j, _ in self.set_capacities]
        if len(set(resized)) != len(resized):
            raise SchedulingError(
                f"delta resizes a site twice: {resized}"
            )
        for j, c in self.set_capacities:
            if not c > 0.0 or c != c or c == float("inf"):
                raise SchedulingError(
                    f"delta sets site {j} capacity to {c!r}; must be "
                    "positive and finite"
                )
        if self.phase_index < 0:
            raise SchedulingError(
                f"phase index must be >= 0, got {self.phase_index}"
            )
        for name, seq in (
            ("remove_sites", self.remove_sites),
            ("restore_sites", self.restore_sites),
            ("remove_operators", self.remove_operators),
        ):
            if len(set(seq)) != len(seq):
                raise SchedulingError(f"delta repeats entries in {name}: {seq}")
        overlap_sites = set(self.remove_sites) & set(self.restore_sites)
        if overlap_sites:
            raise SchedulingError(
                f"delta both removes and restores sites {sorted(overlap_sites)}"
            )
        seen: set[tuple[str, int]] = set()
        for item in self.add_items:
            key = (item.operator, item.clone_index)
            if key in seen:
                raise SchedulingError(
                    f"delta adds clone {item.clone_index} of "
                    f"{item.operator!r} twice"
                )
            seen.add(key)

    @property
    def is_empty(self) -> bool:
        """True when applying the delta is a no-op."""
        return not (
            self.remove_sites
            or self.restore_sites
            or self.remove_operators
            or self.add_items
            or self.set_capacities
        )


@dataclass(frozen=True)
class RescheduleStats:
    """What one :func:`reschedule_schedule` call actually did.

    Attributes
    ----------
    clones_moved:
        Displaced clones re-placed on surviving sites (withdrawn
        operators' clones are dropped, not moved).
    clones_added:
        Newly appended clones placed.
    operators_removed:
        Operators fully withdrawn from the schedule.
    sites_drained, sites_restored:
        Sites taken out of / returned to service.
    sites_resized:
        Sites whose capacity the delta changed in place.
    placement_scans:
        Heap entries (or linear probes) examined while re-placing —
        the repair-cost analogue of the packing ``placement_scans``
        counter; for a small delta this stays far below the cold
        re-pack's count.
    """

    clones_moved: int = 0
    clones_added: int = 0
    operators_removed: int = 0
    sites_drained: int = 0
    sites_restored: int = 0
    sites_resized: int = 0
    placement_scans: int = 0

    @property
    def clones_placed(self) -> int:
        """Total clones the repair placed (moved + added)."""
        return self.clones_moved + self.clones_added


def _validate_delta_against(schedule: Schedule, delta: ScheduleDelta) -> None:
    disabled = schedule.disabled_sites
    for j in delta.remove_sites:
        if not 0 <= j < schedule.p:
            raise SchedulingError(
                f"delta removes site {j}, outside 0..{schedule.p - 1}"
            )
        if j in disabled:
            raise SchedulingError(f"delta removes site {j}, already out of service")
    for j in delta.restore_sites:
        if not 0 <= j < schedule.p:
            raise SchedulingError(
                f"delta restores site {j}, outside 0..{schedule.p - 1}"
            )
        if j not in disabled:
            raise SchedulingError(f"delta restores site {j}, which is in service")
    for j, _ in delta.set_capacities:
        if not 0 <= j < schedule.p:
            raise SchedulingError(
                f"delta resizes site {j}, outside 0..{schedule.p - 1}"
            )
    d = schedule.d
    for item in delta.add_items:
        if item.work.d != d:
            raise SchedulingError(
                f"delta adds clone of {item.operator!r} with d={item.work.d}; "
                f"schedule has d={d}"
            )


def _drain_and_mutate(
    schedule: Schedule, delta: ScheduleDelta
) -> tuple[list[CloneItem], int, int]:
    """Apply the destructive half of the delta.

    Returns the pending clone items (displaced plus added, withdrawn
    operators filtered out), the number of operators removed, and the
    number of displaced clones that must be re-placed.
    """
    displaced: list[PlacedClone] = []
    drained_ops: set[str] = set()
    for j in delta.remove_sites:
        clones = schedule.drain_site(j)
        schedule.disable_site(j)
        displaced.extend(clones)
        drained_ops.update(c.operator for c in clones)
    for j in delta.restore_sites:
        schedule.enable_site(j)
    # Capacity changes are applied before the re-placement pass below, so
    # the displaced clones already see the new speeds when choosing sites.
    for j, capacity in delta.set_capacities:
        schedule.set_site_capacity(j, capacity)
    removed_ops = set(delta.remove_operators)
    operators_removed = 0
    for op in delta.remove_operators:
        if op in schedule.operators:
            schedule.remove_operator(op)
            operators_removed += 1
        elif op in drained_ops:
            # All of its clones lived on the drained sites; dropping the
            # displaced copies below is the whole removal.
            operators_removed += 1
        else:
            raise SchedulingError(f"operator {op!r} has no placed clones")
    pending = [
        CloneItem(operator=c.operator, clone_index=c.clone_index, work=c.work)
        for c in displaced
        if c.operator not in removed_ops
    ]
    moved = len(pending)
    pending.extend(delta.add_items)
    return pending, operators_removed, moved


def _place_pending(
    schedule: Schedule,
    ordered: list[CloneItem],
    overlap: OverlapModel,
    rule: PlacementRule,
) -> int:
    """Place re-sorted pending clones on the enabled sites; return scans."""
    if rule is PlacementRule.LEAST_LOADED_LENGTH:
        heap = SiteHeap(
            schedule.enabled_sites(),
            key=lambda s: (s.normalized_length(), s.index),
        )
        for item in ordered:
            op = item.operator
            site = heap.pick(lambda s: not s.hosts_operator(op))
            if site is None:
                raise _no_allowable_site(item)
            j = site.index
            schedule.place(
                j,
                PlacedClone(
                    operator=item.operator,
                    clone_index=item.clone_index,
                    work=item.work,
                    t_seq=overlap.t_seq(item.work),
                ),
            )
            heap.update(schedule.site(j))
        return heap.scans
    if rule in (PlacementRule.FIRST_FIT, PlacementRule.MIN_RESULTING_LENGTH):
        scans = 0
        for item in ordered:
            best = -1
            best_len = 0.0
            examined = 0
            for site in schedule.enabled_sites():
                examined += 1
                if site.hosts_operator(item.operator):
                    continue
                if rule is PlacementRule.FIRST_FIT:
                    best = site.index
                    break
                resulting = site.normalized_resulting_length(item.work)
                if best < 0 or resulting < best_len:
                    best = site.index
                    best_len = resulting
            if best < 0:
                raise _no_allowable_site(item)
            scans += examined
            schedule.place(
                best,
                PlacedClone(
                    operator=item.operator,
                    clone_index=item.clone_index,
                    work=item.work,
                    t_seq=overlap.t_seq(item.work),
                ),
            )
        return scans
    raise SchedulingError(
        f"placement rule {rule.value!r} is not supported for incremental "
        "repair (stateful or randomized rules cannot be replayed "
        "deterministically against an existing schedule)"
    )


def reschedule_schedule(
    schedule: Schedule,
    delta: ScheduleDelta,
    *,
    overlap: OverlapModel,
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    metrics=None,
) -> RescheduleStats:
    """Repair ``schedule`` in place after ``delta``; return what was done.

    The schedule is mutated directly — repair at the ``p = 10^3`` scale
    must not pay an O(n) copy; callers that need the original intact
    copy it first (:meth:`Schedule.copy <repro.core.schedule.Schedule.copy>`,
    which the engine-level entry point does by default).

    ``metrics`` optionally takes a
    :class:`~repro.engine.metrics.MetricsRecorder` (duck-typed — core
    does not import the engine); the repair then records the
    ``reschedules``/``clones_moved``/``sites_drained``/``sites_restored``
    counters, the shared ``placement_scans`` counter, and a
    ``reschedule`` wall-clock timer.

    Raises
    ------
    SchedulingError
        When the delta does not apply to this schedule (unknown site or
        operator, double-remove, dimensionality mismatch) or the rule is
        not repairable.
    InfeasibleScheduleError
        When a pending clone has no allowable enabled site.  The
        schedule may be partially repaired in this case; callers
        wanting all-or-nothing semantics repair a copy.
    """
    _validate_delta_against(schedule, delta)
    timer = metrics.timer("reschedule") if metrics is not None else nullcontext()
    with current_tracer().span(
        "reschedule_repair",
        phase=delta.phase_index,
        removed=len(delta.remove_sites),
        restored=len(delta.restore_sites),
        resized=len(delta.set_capacities),
        added=len(delta.add_items),
    ), timer:
        pending, operators_removed, moved = _drain_and_mutate(schedule, delta)
        scans = 0
        if pending:
            ordered = _sorted_items(pending, sort, None)
            scans = _place_pending(schedule, ordered, overlap, rule)
        stats = RescheduleStats(
            clones_moved=moved,
            clones_added=len(delta.add_items),
            operators_removed=operators_removed,
            sites_drained=len(delta.remove_sites),
            sites_restored=len(delta.restore_sites),
            sites_resized=len(delta.set_capacities),
            placement_scans=scans,
        )
        if metrics is not None:
            metrics.count("reschedules")
            metrics.count("clones_moved", stats.clones_moved)
            metrics.count("sites_drained", stats.sites_drained)
            metrics.count("sites_restored", stats.sites_restored)
            if stats.sites_resized:
                metrics.count("sites_resized", stats.sites_resized)
            metrics.count("placement_scans", scans)
    return stats


# ----------------------------------------------------------------------
# Naive reference implementation (retained for the golden tests)
# ----------------------------------------------------------------------
def reschedule_reference(
    schedule: Schedule,
    delta: ScheduleDelta,
    *,
    overlap: OverlapModel,
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
) -> Schedule:
    """Cold-rebuild oracle for :func:`reschedule_schedule`.

    Leaves ``schedule`` untouched and returns a *fresh* repaired
    schedule built the slow way: replay every surviving placement onto
    an empty schedule (site by site, placement order), then pack the
    displaced-plus-added clones with the O(p)-rescanning reference rule
    restricted to the enabled sites.  The golden tests assert
    ``schedule_to_dict`` equality against the in-place fast path.
    """
    _validate_delta_against(schedule, delta)
    removed_sites = set(delta.remove_sites)
    removed_ops = set(delta.remove_operators)
    capacities = (
        None if schedule.is_uniform_capacity() else schedule.capacities()
    )
    fresh = Schedule(schedule.p, schedule.d, capacities)
    for j, capacity in delta.set_capacities:
        fresh.set_site_capacity(j, capacity)
    displaced: list[CloneItem] = []
    for site in schedule.sites:
        for clone in site.clones:
            if clone.operator in removed_ops:
                continue
            if site.index in removed_sites:
                displaced.append(
                    CloneItem(
                        operator=clone.operator,
                        clone_index=clone.clone_index,
                        work=clone.work,
                    )
                )
            else:
                fresh.place(site.index, clone)
    for j in schedule.disabled_sites | removed_sites:
        if j not in delta.restore_sites:
            fresh.disable_site(j)
    pending = displaced + list(delta.add_items)
    if not pending:
        return fresh
    enabled = {s.index for s in fresh.enabled_sites()}
    for item in _sorted_items(pending, sort, None):
        allowable = [
            site
            for site in fresh.sites
            if site.index in enabled and not site.hosts_operator(item.operator)
        ]
        if not allowable:
            raise _no_allowable_site(item)
        if rule is PlacementRule.LEAST_LOADED_LENGTH:
            j = min(
                allowable,
                key=lambda s: (_reference_site_length(s) / s.capacity, s.index),
            ).index
        elif rule is PlacementRule.FIRST_FIT:
            j = min(allowable, key=lambda s: s.index).index
        elif rule is PlacementRule.MIN_RESULTING_LENGTH:
            def resulting(site) -> float:
                load = site.load_vector()
                return max(
                    a + b for a, b in zip(load.components, item.work.components)
                ) / site.capacity
            j = min(allowable, key=lambda s: (resulting(s), s.index)).index
        else:
            raise SchedulingError(
                f"placement rule {rule.value!r} is not supported for "
                "incremental repair"
            )
        fresh.place(
            j,
            PlacedClone(
                operator=item.operator,
                clone_index=item.clone_index,
                work=item.work,
                t_seq=overlap.t_seq(item.work),
            ),
        )
    return fresh
