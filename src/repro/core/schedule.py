"""Schedules and their response times (Definition 5.1, Equation 3).

A *schedule* maps the ``sum_i N_i`` operator clones of a set of concurrent
operators to the ``P`` available sites so that no two clones of the same
operator land on the same site (Definition 5.1).  Its response time is
determined by the most heavily loaded site:

    ``T_par(SCHED, P) = max_j T_site(s_j)
                      = max{ max_i T_par(op_i, N_i),  max_j l(work(s_j)) }``

(Equation 3) — the larger of the slowest executing operator and the load at
the most congested resource in the system.

:class:`Schedule` represents the outcome of scheduling one synchronized
phase; :class:`PhasedSchedule` strings phases together for a full bushy
plan (Section 5.4), whose response time is the sum of the per-phase
makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.core.site import PlacedClone, Site
from repro.core.work_vector import WorkVector

__all__ = ["Schedule", "PhasedSchedule", "OperatorHome"]


@dataclass(frozen=True)
class OperatorHome:
    """The *home* of an operator: the sites allotted to its execution.

    Section 3.1: an operator is *rooted* when its home is fixed by data
    placement constraints, *floating* when the scheduler is free to choose
    it.  Homes produced while scheduling one phase become rooting
    constraints for dependent operators in later phases (e.g. a hash
    join's probe must execute at the home of its build).

    Attributes
    ----------
    operator:
        Operator name.
    site_indices:
        Site index of each clone, ordered by clone index (entry 0 is the
        coordinator's site).
    """

    operator: str
    site_indices: tuple[int, ...]

    @property
    def degree(self) -> int:
        """The operator's degree of partitioned parallelism."""
        return len(self.site_indices)

    def __post_init__(self) -> None:
        if not self.site_indices:
            raise SchedulingError(f"home of {self.operator!r} must be non-empty")
        if len(set(self.site_indices)) != len(self.site_indices):
            raise SchedulingError(
                f"home of {self.operator!r} repeats a site: {self.site_indices} "
                "(constraint (A) of Section 5.3)"
            )


class Schedule:
    """A clone-to-site mapping for one set of concurrent operators.

    Construct an empty schedule over ``p`` fresh ``d``-dimensional sites,
    then :meth:`place` clones (typically via the scheduling algorithms);
    or adopt pre-built sites with :meth:`from_sites`.
    """

    def __init__(self, p: int, d: int, capacities: "tuple[float, ...] | list[float] | None" = None):
        if p < 1:
            raise SchedulingError(f"number of sites must be >= 1, got {p}")
        if capacities is None:
            self._sites = [Site(j, d) for j in range(p)]
        else:
            if len(capacities) != p:
                raise SchedulingError(
                    f"capacities has {len(capacities)} entries; expected P={p}"
                )
            self._sites = [Site(j, d, capacities[j]) for j in range(p)]
        self._d = d
        self._homes: dict[str, list[tuple[int, int]]] = {}
        # Running totals maintained on every place() so the aggregate
        # queries below never rescan the site array.
        self._total_work = [0.0] * d
        self._clone_count = 0
        # Sites taken out of service (failed and not yet restored); they
        # keep their slot so indices stay dense, but placement on them is
        # rejected.  Only the rescheduling layer flips these flags.
        self._disabled: set[int] = set()

    @classmethod
    def from_sites(cls, sites: list[Site]) -> "Schedule":
        """Wrap an existing list of sites (indices must be ``0..P-1``)."""
        if not sites:
            raise SchedulingError("a schedule needs at least one site")
        d = sites[0].d
        sched = cls(len(sites), d)
        sched._sites = list(sites)
        for j, site in enumerate(sites):
            if site.index != j:
                raise SchedulingError(
                    f"site at position {j} has index {site.index}; expected {j}"
                )
            if site.d != d:
                raise SchedulingError("all sites must share one dimensionality")
            for clone in site.clones:
                sched._homes.setdefault(clone.operator, []).append(
                    (clone.clone_index, j)
                )
                for i, c in enumerate(clone.work.components):
                    sched._total_work[i] += c
                sched._clone_count += 1
        return sched

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of system sites ``P``."""
        return len(self._sites)

    @property
    def d(self) -> int:
        """Site dimensionality (number of resources per site)."""
        return self._d

    @property
    def sites(self) -> tuple[Site, ...]:
        """The sites of the system, by index."""
        return tuple(self._sites)

    def site(self, index: int) -> Site:
        """Return site ``index``."""
        return self._sites[index]

    @property
    def operators(self) -> frozenset[str]:
        """Names of all operators with at least one placed clone."""
        return frozenset(self._homes)

    def clone_count(self) -> int:
        """Total number of placed clones ``N = sum_i N_i`` (maintained O(1))."""
        return self._clone_count

    @property
    def disabled_sites(self) -> frozenset[int]:
        """Indices of sites currently taken out of service."""
        return frozenset(self._disabled)

    def enabled_sites(self) -> tuple[Site, ...]:
        """The in-service sites, by index (all sites minus the disabled)."""
        if not self._disabled:
            return tuple(self._sites)
        return tuple(s for s in self._sites if s.index not in self._disabled)

    def capacities(self) -> tuple[float, ...]:
        """Per-site capacities, by index (all ``1.0`` on a homogeneous cluster)."""
        return tuple(s.capacity for s in self._sites)

    def is_uniform_capacity(self) -> bool:
        """True when every site runs at the default unit capacity."""
        return all(s.capacity == 1.0 for s in self._sites)

    def total_capacity(self) -> float:
        """Sum of site capacities (``P`` exactly on a homogeneous cluster)."""
        return sum(s.capacity for s in self._sites)

    def set_site_capacity(self, site_index: int, capacity: float) -> None:
        """Resize one site in place (see :meth:`Site.set_capacity`)."""
        self._check_site_index(site_index)
        self._sites[site_index].set_capacity(capacity)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_site_index(self, site_index: int) -> None:
        if not 0 <= site_index < len(self._sites):
            raise SchedulingError(
                f"site index {site_index} out of range 0..{len(self._sites) - 1}"
            )

    def place(self, site_index: int, clone: PlacedClone) -> None:
        """Place ``clone`` on site ``site_index`` (enforces constraint (A))."""
        self._check_site_index(site_index)
        if site_index in self._disabled:
            raise SchedulingError(f"site {site_index} is out of service")
        self._sites[site_index].place(clone)
        self._homes.setdefault(clone.operator, []).append(
            (clone.clone_index, site_index)
        )
        for i, c in enumerate(clone.work.components):
            self._total_work[i] += c
        self._clone_count += 1

    def place_batch(self, placements: list[tuple[int, PlacedClone]]) -> None:
        """Bulk :meth:`place`: ``(site_index, clone)`` pairs in placement order.

        Site indices are validated and the clones grouped per site, then
        each site folds its group through
        :meth:`Site.place_batch <repro.core.site.Site.place_batch>`.
        Because grouping preserves the relative order of each site's
        clones and the schedule-level totals are folded in the original
        pair order, every incremental statistic is bit-identical to the
        sequential :meth:`place` loop.
        """
        by_site: dict[int, list[PlacedClone]] = {}
        for site_index, clone in placements:
            self._check_site_index(site_index)
            if site_index in self._disabled:
                raise SchedulingError(f"site {site_index} is out of service")
            by_site.setdefault(site_index, []).append(clone)
        for site_index, group in by_site.items():
            self._sites[site_index].place_batch(group)
        homes = self._homes
        total = self._total_work
        for site_index, clone in placements:
            homes.setdefault(clone.operator, []).append(
                (clone.clone_index, site_index)
            )
            for i, c in enumerate(clone.work.components):
                total[i] += c
        self._clone_count += len(placements)

    def disable_site(self, site_index: int) -> None:
        """Take a site out of service (no new placements allowed on it)."""
        self._check_site_index(site_index)
        self._disabled.add(site_index)

    def enable_site(self, site_index: int) -> None:
        """Return a site to service (idempotent)."""
        self._check_site_index(site_index)
        self._disabled.discard(site_index)

    def drain_site(self, site_index: int) -> tuple[PlacedClone, ...]:
        """Remove and return all clones of one site (in placement order).

        The site is replaced by a fresh empty one; homes and the running
        aggregates are updated.  The running total-work vector is
        adjusted by subtraction, which may drift from a full
        re-accumulation by floating-point rounding — acceptable because
        no placement decision reads it (site-level statistics are
        rebuilt exactly).
        """
        self._check_site_index(site_index)
        site = self._sites[site_index]
        clones = site.clones
        self._sites[site_index] = Site(site_index, self._d, site.capacity)
        total = self._total_work
        for clone in clones:
            self._drop_home(clone.operator, clone.clone_index, site_index)
            for i, c in enumerate(clone.work.components):
                total[i] -= c
        self._clone_count -= len(clones)
        return clones

    def remove_operator(self, operator: str) -> tuple[tuple[int, PlacedClone], ...]:
        """Remove every clone of ``operator``; returns ``(site, clone)`` pairs.

        Each affected site is rebuilt from its remaining clones in the
        original placement order, so the surviving incremental statistics
        stay bit-identical to a from-scratch fold.
        """
        if operator not in self._homes:
            raise SchedulingError(f"operator {operator!r} has no placed clones")
        pairs = self._homes.pop(operator)
        removed: list[tuple[int, PlacedClone]] = []
        total = self._total_work
        for _, site_index in pairs:
            old = self._sites[site_index]
            fresh = Site(site_index, self._d, old.capacity)
            keep: list[PlacedClone] = []
            for clone in old.clones:
                if clone.operator == operator:
                    removed.append((site_index, clone))
                    for i, c in enumerate(clone.work.components):
                        total[i] -= c
                    self._clone_count -= 1
                else:
                    keep.append(clone)
            if keep:
                fresh.place_batch(keep)
            self._sites[site_index] = fresh
        return tuple(removed)

    def _drop_home(self, operator: str, clone_index: int, site_index: int) -> None:
        pairs = self._homes[operator]
        pairs.remove((clone_index, site_index))
        if not pairs:
            del self._homes[operator]

    def copy(self) -> "Schedule":
        """Deep-enough copy: fresh sites/aggregates, shared immutable clones.

        Site statistics are re-folded per site in placement order
        (bit-identical); the schedule-level total-work vector is
        re-accumulated in site order, which may differ from the original
        placement interleaving in the last ulp — no placement decision
        reads it.
        """
        dup = Schedule.from_sites([site.copy() for site in self._sites])
        dup._disabled = set(self._disabled)
        return dup

    # ------------------------------------------------------------------
    # Homes
    # ------------------------------------------------------------------
    def home(self, operator: str) -> OperatorHome:
        """Return the home (clone-ordered site indices) of ``operator``."""
        try:
            pairs = self._homes[operator]
        except KeyError:
            raise SchedulingError(f"operator {operator!r} has no placed clones") from None
        ordered = tuple(site for _, site in sorted(pairs))
        return OperatorHome(operator=operator, site_indices=ordered)

    def homes(self) -> dict[str, OperatorHome]:
        """Return the home of every placed operator."""
        return {op: self.home(op) for op in self._homes}

    # ------------------------------------------------------------------
    # Response-time metrics (Equation 3)
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Equation (3): ``max_j T_site(s_j)`` over all sites."""
        return max((s.t_site() for s in self._sites), default=0.0)

    def max_parallel_time(self) -> float:
        """The left input of Equation (3)'s max: ``max_i T_par(op_i, N_i)``.

        Computed as the maximum stand-alone clone time across all sites,
        which equals ``max_i T_par`` because every operator's parallel
        time is the maximum of its clones' sequential times (Equation 1).
        """
        return max((s.max_t_seq() for s in self._sites), default=0.0)

    def max_site_length(self) -> float:
        """The right input of Equation (3)'s max: ``max_j l(work(s_j))``."""
        return max(
            (s.length() for s in self._sites if not s.is_empty()), default=0.0
        )

    def bottleneck_site(self) -> Site:
        """Return the site attaining the makespan."""
        return max(self._sites, key=lambda s: s.t_site())

    def is_congestion_bound(self) -> bool:
        """True when the makespan is set by resource congestion.

        i.e. ``max_j l(work(s_j)) >= max_i T_par(op_i, N_i)``: the most
        congested resource, not the slowest operator, limits the schedule.
        """
        return self.max_site_length() >= self.max_parallel_time()

    def total_work(self) -> WorkVector:
        """Componentwise total work over the whole system.

        Maintained incrementally on :meth:`place`, so this is O(d)
        regardless of the number of sites or clones.
        """
        return WorkVector(self._total_work)

    def average_utilization(self) -> tuple[float, ...]:
        """System-wide per-resource utilization at the makespan horizon."""
        t = self.makespan()
        if t <= 0.0:
            return (0.0,) * self._d
        total = self.total_work()
        return tuple(c / (t * len(self._sites)) for c in total.components)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, degrees: dict[str, int] | None = None) -> None:
        """Check Definition 5.1's structural constraints.

        * constraint (A): no two clones of one operator on one site — this
          is enforced on placement, but re-verified here for safety;
        * clone indices of each operator are ``0..N_i-1`` with no gaps;
        * when ``degrees`` is given, each operator has exactly its
          prescribed number of clones.

        Raises
        ------
        SchedulingError
            On any violation.
        """
        for site in self._sites:
            seen: set[str] = set()
            for clone in site.clones:
                if clone.operator in seen:
                    raise SchedulingError(
                        f"site {site.index} hosts two clones of {clone.operator!r}"
                    )
                seen.add(clone.operator)
        for op, pairs in self._homes.items():
            indices = sorted(idx for idx, _ in pairs)
            if indices != list(range(len(indices))):
                raise SchedulingError(
                    f"operator {op!r} has clone indices {indices}; expected "
                    f"0..{len(indices) - 1}"
                )
            if degrees is not None and op in degrees and len(indices) != degrees[op]:
                raise SchedulingError(
                    f"operator {op!r} has {len(indices)} clones; expected {degrees[op]}"
                )

    def __repr__(self) -> str:
        return (
            f"Schedule(P={self.p}, d={self.d}, operators={len(self._homes)}, "
            f"clones={self.clone_count()}, makespan={self.makespan():.6g})"
        )


@dataclass
class PhasedSchedule:
    """A sequence of synchronized phases for a bushy plan (Section 5.4).

    Each phase contains independent tasks executed concurrently after the
    completion of all tasks in the previous phase; the plan's response
    time is therefore the sum of the per-phase makespans.

    Attributes
    ----------
    phases:
        Per-phase schedules, in execution order (deepest task-tree level
        first).
    labels:
        Optional per-phase labels (e.g. the task names of that phase).
    """

    phases: list[Schedule] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    def append(self, schedule: Schedule, label: str = "") -> None:
        """Add the next phase."""
        self.phases.append(schedule)
        self.labels.append(label or f"phase-{len(self.phases) - 1}")

    @property
    def num_phases(self) -> int:
        """Number of synchronized phases (the height of the task tree)."""
        return len(self.phases)

    def response_time(self) -> float:
        """Total response time: the sum of per-phase makespans."""
        return sum(s.makespan() for s in self.phases)

    def phase_makespans(self) -> list[float]:
        """Per-phase makespans in execution order."""
        return [s.makespan() for s in self.phases]

    def total_work(self) -> WorkVector:
        """Componentwise work totals summed over all phases.

        Raises
        ------
        SchedulingError
            If the schedule has no phases (no dimensionality to sum in).
        """
        if not self.phases:
            raise SchedulingError("total_work() of an empty PhasedSchedule")
        acc = [0.0] * self.phases[0].d
        for schedule in self.phases:
            for i, c in enumerate(schedule.total_work().components):
                acc[i] += c
        return WorkVector(acc)

    def validate(self) -> None:
        """Validate every phase's structural constraints."""
        for schedule in self.phases:
            schedule.validate()

    def home(self, operator: str) -> OperatorHome:
        """Return the home of ``operator``, searching phases in order."""
        for schedule in self.phases:
            if operator in schedule.operators:
                return schedule.home(operator)
        raise SchedulingError(f"operator {operator!r} not found in any phase")

    def __repr__(self) -> str:
        return (
            f"PhasedSchedule(phases={self.num_phases}, "
            f"response_time={self.response_time():.6g})"
        )
