"""Optional numpy-vectorized batch kernels for bounds and Equation (3).

The figure sweeps evaluate the same small formulas thousands of times:
``l(S)`` of a set of work vectors (the congestion side of OPTBOUND and of
the ``LB(N̄)`` lower bound) and the Equation (3) makespan of a packing
re-evaluated under many overlap parameters (sensitivity analysis).  This
module batches those evaluations and vectorizes them with numpy when it
is importable, falling back to exact pure-Python loops otherwise.

Selection semantics
-------------------
* numpy is **optional**: ``import repro.core.batch`` never fails without
  it, and every function silently uses the pure-Python path
  (:data:`HAVE_NUMPY` reports which regime is active).
* the numpy path is auto-selected only above a small size cutover
  (:data:`NUMPY_CUTOVER` vectors), below which interpreter-loop evaluation
  is faster than array construction.
* the pure-Python path reproduces the scalar kernels bit-for-bit.  The
  numpy path of the *reduction* kernels (:func:`sum_length`,
  :func:`set_length_batch`, …) may differ from sequential summation in
  the last ulp (pairwise summation); callers that require bit-stable
  output across environments do not go through those kernels.
* the *placement* and *family* kernels added for the batched shelf
  packer (:func:`pack_least_loaded_batch`, :func:`family_congestions`)
  are engineered to be **bit-stable**: they only use element-wise adds,
  exact max/argmin selections and sequential ``np.add.accumulate``
  folds, all of which reproduce the scalar left-to-right arithmetic of
  :class:`~repro.core.site.Site` exactly.  The golden packing tests
  assert this byte-for-byte against the rescanning reference.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.schedule import Schedule
from repro.core.work_vector import WorkVector, vector_sum

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "NUMPY_CUTOVER",
    "sum_length",
    "set_length_batch",
    "lower_bounds_batch",
    "eq3_makespans_over_epsilon",
    "pack_least_loaded_batch",
    "family_congestions",
]

#: Minimum total vector count before the numpy path pays for its own
#: array-construction overhead (measured on the kernel micro-benchmark;
#: conservative so small calls keep the exact scalar arithmetic).
NUMPY_CUTOVER = 64


def sum_length(vectors: Sequence[WorkVector], d: int | None = None) -> float:
    """Return ``l(S)``: the length of the componentwise sum of ``vectors``.

    Same contract as :func:`repro.core.work_vector.set_length`, but
    auto-selects a numpy reduction for large sets.
    """
    vectors = list(vectors)
    if not vectors:
        if d is None:
            raise SchedulingError(
                "sum_length of an empty collection requires explicit dimensionality"
            )
        return 0.0
    if HAVE_NUMPY and len(vectors) >= NUMPY_CUTOVER:
        arr = _np.array([v.components for v in vectors], dtype=_np.float64)
        return float(arr.sum(axis=0).max())
    return vector_sum(vectors).length()


def set_length_batch(
    groups: Sequence[Sequence[WorkVector]], d: int
) -> list[float]:
    """Return ``l(S_k)`` for every group ``S_k`` in one pass.

    Ragged groups are supported; empty groups yield ``0.0``.  The numpy
    path concatenates all vectors into one ``(N, d)`` array and reduces
    per-group slices with ``np.add.reduceat``, so the whole batch costs
    one array construction instead of one per group.
    """
    if d < 1:
        raise SchedulingError(f"dimensionality must be >= 1, got {d}")
    groups = [list(g) for g in groups]
    total = sum(len(g) for g in groups)
    if HAVE_NUMPY and total >= NUMPY_CUTOVER:
        flat = _np.empty((total, d), dtype=_np.float64)
        offsets = []
        row = 0
        for g in groups:
            offsets.append(row)
            for v in g:
                if v.d != d:
                    raise SchedulingError(
                        f"dimensionality mismatch in set_length_batch: {v.d} vs {d}"
                    )
                flat[row] = v.components
                row += 1
        out: list[float] = []
        # reduceat cannot express empty slices directly; walk the offset
        # list and reduce each non-empty [start, stop) band.
        for k, g in enumerate(groups):
            if not g:
                out.append(0.0)
                continue
            start = offsets[k]
            stop = start + len(g)
            out.append(float(flat[start:stop].sum(axis=0).max()))
        return out
    out = []
    for g in groups:
        if not g:
            out.append(0.0)
        else:
            out.append(vector_sum(g).length())
    return out


def lower_bounds_batch(
    groups: Sequence[Sequence[WorkVector]],
    h_values: Sequence[float],
    p: int,
    d: int,
    *,
    total_capacity: float | None = None,
) -> list[float]:
    """Return ``LB_k = max{ l(S_k)/C, h_k }`` for a family of candidates.

    ``groups[k]`` holds candidate ``k``'s total work vectors
    (communication included) and ``h_values[k]`` its slowest operator's
    parallel time — the two inputs of the Section 7 lower bound.  ``C``
    is the total system capacity: ``P`` on a homogeneous cluster (the
    default), ``sum of site capacities`` on a heterogeneous one.  With
    ``total_capacity == float(p)`` the division is bit-identical to the
    historical ``/ p``.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if len(groups) != len(h_values):
        raise SchedulingError(
            f"lower_bounds_batch: {len(groups)} groups vs {len(h_values)} h values"
        )
    denom = float(p) if total_capacity is None else float(total_capacity)
    if not denom > 0.0:
        raise SchedulingError(
            f"total capacity must be positive, got {total_capacity!r}"
        )
    lengths = set_length_batch(groups, d)
    return [max(length / denom, h) for length, h in zip(lengths, h_values)]


def eq3_makespans_over_epsilon(
    schedule: Schedule, epsilons: Sequence[float]
) -> list[float]:
    """Re-evaluate a fixed packing's Equation (3) makespan per epsilon.

    Under the EA2 convex-combination overlap model
    ``T(W) = eps·l(W) + (1-eps)·sum(W)``, the site loads of a placement do
    not depend on ``eps`` — only the stand-alone clone times do.  The
    makespan of the *same* clone-to-site mapping under overlap ``eps`` is
    therefore

        ``max{ max_j l(work(s_j)),  max_c (eps·l(w̄_c) + (1-eps)·sum(w̄_c)) }``

    evaluated here for a whole grid of epsilons at once (vectorized when
    numpy is available).  This is the sensitivity-sweep question "how
    robust is this placement to the overlap calibration?" answered
    without re-running the scheduler: for each ``eps`` the result equals
    rebuilding every site via :meth:`repro.core.site.Site.recompute_t_seq`
    with ``ConvexCombinationOverlap(eps)`` and taking the makespan.
    """
    for eps in epsilons:
        if not 0.0 <= eps <= 1.0:
            raise SchedulingError(f"overlap parameter must lie in [0, 1], got {eps}")
    max_site_length = schedule.max_site_length()
    lens: list[float] = []
    tots: list[float] = []
    for site in schedule.sites:
        for clone in site.clones:
            lens.append(clone.work.length())
            tots.append(clone.work.total())
    if not lens:
        return [0.0 for _ in epsilons]
    if HAVE_NUMPY and len(lens) * max(len(epsilons), 1) >= NUMPY_CUTOVER:
        l_arr = _np.array(lens, dtype=_np.float64)
        t_arr = _np.array(tots, dtype=_np.float64)
        eps_arr = _np.array(list(epsilons), dtype=_np.float64)[:, None]
        t_seq = eps_arr * l_arr + (1.0 - eps_arr) * t_arr
        worst = t_seq.max(axis=1)
        return [float(max(max_site_length, w)) for w in worst]
    out = []
    for eps in epsilons:
        worst = max(eps * ln + (1.0 - eps) * tt for ln, tt in zip(lens, tots))
        out.append(max(max_site_length, worst))
    return out


# ----------------------------------------------------------------------
# Batched shelf packing (array-shaped placement loop)
# ----------------------------------------------------------------------
def pack_least_loaded_batch(
    components: Sequence[tuple[float, ...]],
    operators: Sequence[str],
    p: int,
    d: int,
    *,
    clone_indices: Sequence[int] | None = None,
    tiebreak_total: bool = False,
    initial_sites: Sequence | None = None,
    capacities: Sequence[float] | None = None,
) -> list[int] | None:
    """Array-shaped least-loaded placement: one site index per clone.

    This is the batched core of the Figure 3 rule *place on the least
    filled allowable site*.  ``components[i]`` is clone ``i``'s work
    vector (in the already-sorted packing order) and ``operators[i]`` its
    constraint (A) key.  Site lengths live in one flat ``(p,)`` float64
    array instead of :class:`~repro.core.site.Site` objects, and the
    per-clone site choice is a C-speed ``argmin`` over that array with
    the operator's own sites temporarily masked to ``+inf`` —
    ``argmin``'s first-occurrence semantics reproduce the deterministic
    ``(length, index)`` tie-break of the heap and rescanning rules.

    With ``tiebreak_total=True`` the selection key becomes
    ``(length, total_load, index)`` — the OPERATORSCHEDULE step 3 key —
    by refining length-ties through a per-site running total maintained
    with *scalar* left-to-right adds (bit-identical to
    :meth:`Site.place <repro.core.site.Site.place>`).

    ``initial_sites`` warm-starts the arrays from existing
    :class:`~repro.core.site.Site` objects (their incremental statistics
    are copied exactly), so rooted placements made before the batch are
    respected.

    ``capacities`` is the optional per-site capacity row of the
    structure-of-arrays state: selection runs over *normalized* lengths
    ``raw_length[j] / capacities[j]`` (and, under ``tiebreak_total``,
    normalized totals), while the load/length bookkeeping itself stays in
    raw unit-capacity seconds.  Omitted or all-``1.0`` rows divide by
    exactly ``1.0`` — a bit-exact no-op — so the homogeneous path is
    byte-identical to the historical kernel.

    Bit-stability: loads and lengths are updated with the same scalar
    left-to-right adds and running-max comparisons that
    :meth:`Site.place <repro.core.site.Site.place>` performs, so every
    intermediate equals the arithmetic of repeated ``place()`` calls bit
    for bit; the returned assignment is byte-identical to the heap and
    reference paths (golden tests).

    Returns ``None`` when numpy is unavailable or the batch is below
    :data:`NUMPY_CUTOVER` — the caller falls back to the exact
    pure-Python (heap) path.

    Raises
    ------
    InfeasibleScheduleError
        When some clone has no allowable site (its operator already
        occupies every site).
    """
    n = len(components)
    if len(operators) != n:
        raise SchedulingError(
            f"pack_least_loaded_batch: {n} work vectors vs {len(operators)} operators"
        )
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if not (HAVE_NUMPY and n >= NUMPY_CUTOVER):
        return None
    for row in components:
        if len(row) != d:
            raise SchedulingError(
                f"pack_least_loaded_batch: component rows must have d={d}"
            )
    if capacities is not None and len(capacities) != p:
        raise SchedulingError(
            f"pack_least_loaded_batch: {len(capacities)} capacities vs P={p}"
        )
    caps = [1.0] * p if capacities is None else [float(c) for c in capacities]
    for j, c in enumerate(caps):
        if not c > 0.0:
            raise SchedulingError(
                f"pack_least_loaded_batch: site {j} capacity must be positive, got {c!r}"
            )
    # The argmin selection runs over a flat numpy array of *normalized*
    # lengths (C speed, first occurrence == lowest index), but the O(d)
    # load updates stay scalar Python floats: that is *exactly* the
    # left-to-right accumulation Site.place() performs, making
    # bit-identity to the heap/reference paths self-evident rather than
    # argued.  Raw (unit-capacity) lengths live beside the normalized
    # selection row; with all capacities 1.0 the two are bitwise equal.
    lengths = _np.zeros(p, dtype=_np.float64)
    raw_lengths = [0.0] * p
    loads = [[0.0] * d for _ in range(p)]
    # Totals likewise accumulate left-to-right like Site.place().
    totals = [0.0] * p
    op_sites: dict[str, list[int]] = {}
    if initial_sites is not None:
        for site in initial_sites:
            j = site.index
            raw_lengths[j] = site.length()
            lengths[j] = raw_lengths[j] / caps[j]
            loads[j] = list(site.load_vector().components)
            totals[j] = site.total_load()
            for op in site.operators:
                op_sites.setdefault(op, []).append(j)
    # Operators contributing a single clone need no constraint (A)
    # bookkeeping at all — precompute the multi-clone set so the hot loop
    # skips every dict operation for them.
    counts: dict[str, int] = {}
    for op in operators:
        counts[op] = counts.get(op, 0) + 1
    multi = {op for op, c in counts.items() if c > 1}
    # Operators already resident on warm-start sites must keep their
    # bookkeeping even if the batch adds only one more clone of them.
    multi.update(op_sites)
    inf = _np.inf
    out: list[int] = []
    out_append = out.append
    argmin = lengths.argmin
    for i, op in enumerate(operators):
        if op in multi:
            used = op_sites.get(op)
        else:
            used = None
        if used:
            saved = lengths[used]
            lengths[used] = inf
        j = int(argmin())
        best_len = float(lengths[j])
        if best_len == inf:
            if used:
                lengths[used] = saved
            clone = clone_indices[i] if clone_indices is not None else i
            raise InfeasibleScheduleError(
                f"no allowable site for clone {clone} of {op!r}"
            )
        if tiebreak_total:
            ties = _np.flatnonzero(lengths == best_len)
            if ties.shape[0] > 1:
                j = int(ties[0])
                best_total = totals[j] / caps[j]
                for cand in ties[1:].tolist():
                    cand_total = totals[cand] / caps[cand]
                    if cand_total < best_total:
                        j = cand
                        best_total = cand_total
        if used:
            lengths[used] = saved
        # Mirror Site.place() exactly: left-to-right component adds with a
        # running max against the *updated* components.
        row = loads[j]
        length = raw_lengths[j]
        if tiebreak_total:
            t = totals[j]
            for k, c in enumerate(components[i]):
                updated = row[k] + c
                row[k] = updated
                t += c
                if updated > length:
                    length = updated
            totals[j] = t
        else:
            for k, c in enumerate(components[i]):
                updated = row[k] + c
                row[k] = updated
                if updated > length:
                    length = updated
        raw_lengths[j] = length
        lengths[j] = length / caps[j]
        if op in multi:
            op_sites.setdefault(op, []).append(j)
        out_append(j)
    return out


# ----------------------------------------------------------------------
# Batched malleable candidate family (Section 7)
# ----------------------------------------------------------------------
def family_congestions(
    load0: Sequence[float],
    delta: Sequence[float],
    steps: int,
    p: int,
    *,
    total_capacity: float | None = None,
) -> list[float]:
    """Congestion curve ``l(S(N̄^k))/C`` of the greedy family in one pass.

    ``C`` is the total system capacity (default: the site count ``P``,
    the homogeneous case; division by ``float(p)`` is bit-identical to
    the historical ``/ p``).

    The Section 7 family starts from the degree-1 total-work vector
    ``load0`` and every step adds the same startup quantum ``delta``
    (one more clone of the slowest operator).  The reference generator
    maintains the load with a sequential left fold ``load += delta`` and
    reports ``max(load)/p`` per candidate; this kernel reproduces that
    fold exactly — the numpy path uses ``np.add.accumulate`` (a strict
    left fold, bit-identical to repeated addition), never ``load0 +
    k*delta`` (which rounds differently).

    Returns ``steps + 1`` values: candidate 0 (all degrees 1) through
    candidate ``steps``.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if steps < 0:
        raise SchedulingError(f"steps must be >= 0, got {steps}")
    d = len(load0)
    if len(delta) != d:
        raise SchedulingError(
            f"family_congestions: load0 has d={d}, delta has d={len(delta)}"
        )
    denom = float(p) if total_capacity is None else float(total_capacity)
    if not denom > 0.0:
        raise SchedulingError(
            f"total capacity must be positive, got {total_capacity!r}"
        )
    if HAVE_NUMPY and steps + 1 >= NUMPY_CUTOVER:
        rows = _np.empty((steps + 1, d), dtype=_np.float64)
        rows[0] = load0
        rows[1:] = delta
        acc = _np.add.accumulate(rows, axis=0)
        return [float(v) / denom for v in acc.max(axis=1)]
    load = list(load0)
    out = [max(load) / denom]
    for _ in range(steps):
        for i, c in enumerate(delta):
            load[i] += c
        out.append(max(load) / denom)
    return out
