"""Optional numpy-vectorized batch kernels for bounds and Equation (3).

The figure sweeps evaluate the same small formulas thousands of times:
``l(S)`` of a set of work vectors (the congestion side of OPTBOUND and of
the ``LB(N̄)`` lower bound) and the Equation (3) makespan of a packing
re-evaluated under many overlap parameters (sensitivity analysis).  This
module batches those evaluations and vectorizes them with numpy when it
is importable, falling back to exact pure-Python loops otherwise.

Selection semantics
-------------------
* numpy is **optional**: ``import repro.core.batch`` never fails without
  it, and every function silently uses the pure-Python path
  (:data:`HAVE_NUMPY` reports which regime is active).
* the numpy path is auto-selected only above a small size cutover
  (:data:`NUMPY_CUTOVER` vectors), below which interpreter-loop evaluation
  is faster than array construction.
* the pure-Python path reproduces the scalar kernels bit-for-bit.  The
  numpy path may differ from sequential summation in the last ulp
  (pairwise summation); callers that require bit-stable output across
  environments (the golden packing tests) do not go through this module.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import SchedulingError
from repro.core.schedule import Schedule
from repro.core.work_vector import WorkVector, vector_sum

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "NUMPY_CUTOVER",
    "sum_length",
    "set_length_batch",
    "lower_bounds_batch",
    "eq3_makespans_over_epsilon",
]

#: Minimum total vector count before the numpy path pays for its own
#: array-construction overhead (measured on the kernel micro-benchmark;
#: conservative so small calls keep the exact scalar arithmetic).
NUMPY_CUTOVER = 64


def sum_length(vectors: Sequence[WorkVector], d: int | None = None) -> float:
    """Return ``l(S)``: the length of the componentwise sum of ``vectors``.

    Same contract as :func:`repro.core.work_vector.set_length`, but
    auto-selects a numpy reduction for large sets.
    """
    vectors = list(vectors)
    if not vectors:
        if d is None:
            raise SchedulingError(
                "sum_length of an empty collection requires explicit dimensionality"
            )
        return 0.0
    if HAVE_NUMPY and len(vectors) >= NUMPY_CUTOVER:
        arr = _np.array([v.components for v in vectors], dtype=_np.float64)
        return float(arr.sum(axis=0).max())
    return vector_sum(vectors).length()


def set_length_batch(
    groups: Sequence[Sequence[WorkVector]], d: int
) -> list[float]:
    """Return ``l(S_k)`` for every group ``S_k`` in one pass.

    Ragged groups are supported; empty groups yield ``0.0``.  The numpy
    path concatenates all vectors into one ``(N, d)`` array and reduces
    per-group slices with ``np.add.reduceat``, so the whole batch costs
    one array construction instead of one per group.
    """
    if d < 1:
        raise SchedulingError(f"dimensionality must be >= 1, got {d}")
    groups = [list(g) for g in groups]
    total = sum(len(g) for g in groups)
    if HAVE_NUMPY and total >= NUMPY_CUTOVER:
        flat = _np.empty((total, d), dtype=_np.float64)
        offsets = []
        row = 0
        for g in groups:
            offsets.append(row)
            for v in g:
                if v.d != d:
                    raise SchedulingError(
                        f"dimensionality mismatch in set_length_batch: {v.d} vs {d}"
                    )
                flat[row] = v.components
                row += 1
        out: list[float] = []
        # reduceat cannot express empty slices directly; walk the offset
        # list and reduce each non-empty [start, stop) band.
        for k, g in enumerate(groups):
            if not g:
                out.append(0.0)
                continue
            start = offsets[k]
            stop = start + len(g)
            out.append(float(flat[start:stop].sum(axis=0).max()))
        return out
    out = []
    for g in groups:
        if not g:
            out.append(0.0)
        else:
            out.append(vector_sum(g).length())
    return out


def lower_bounds_batch(
    groups: Sequence[Sequence[WorkVector]],
    h_values: Sequence[float],
    p: int,
    d: int,
) -> list[float]:
    """Return ``LB_k = max{ l(S_k)/P, h_k }`` for a family of candidates.

    ``groups[k]`` holds candidate ``k``'s total work vectors
    (communication included) and ``h_values[k]`` its slowest operator's
    parallel time — the two inputs of the Section 7 lower bound.
    """
    if p < 1:
        raise SchedulingError(f"number of sites must be >= 1, got {p}")
    if len(groups) != len(h_values):
        raise SchedulingError(
            f"lower_bounds_batch: {len(groups)} groups vs {len(h_values)} h values"
        )
    lengths = set_length_batch(groups, d)
    return [max(length / p, h) for length, h in zip(lengths, h_values)]


def eq3_makespans_over_epsilon(
    schedule: Schedule, epsilons: Sequence[float]
) -> list[float]:
    """Re-evaluate a fixed packing's Equation (3) makespan per epsilon.

    Under the EA2 convex-combination overlap model
    ``T(W) = eps·l(W) + (1-eps)·sum(W)``, the site loads of a placement do
    not depend on ``eps`` — only the stand-alone clone times do.  The
    makespan of the *same* clone-to-site mapping under overlap ``eps`` is
    therefore

        ``max{ max_j l(work(s_j)),  max_c (eps·l(w̄_c) + (1-eps)·sum(w̄_c)) }``

    evaluated here for a whole grid of epsilons at once (vectorized when
    numpy is available).  This is the sensitivity-sweep question "how
    robust is this placement to the overlap calibration?" answered
    without re-running the scheduler: for each ``eps`` the result equals
    rebuilding every site via :meth:`repro.core.site.Site.recompute_t_seq`
    with ``ConvexCombinationOverlap(eps)`` and taking the makespan.
    """
    for eps in epsilons:
        if not 0.0 <= eps <= 1.0:
            raise SchedulingError(f"overlap parameter must lie in [0, 1], got {eps}")
    max_site_length = schedule.max_site_length()
    lens: list[float] = []
    tots: list[float] = []
    for site in schedule.sites:
        for clone in site.clones:
            lens.append(clone.work.length())
            tots.append(clone.work.total())
    if not lens:
        return [0.0 for _ in epsilons]
    if HAVE_NUMPY and len(lens) * max(len(epsilons), 1) >= NUMPY_CUTOVER:
        l_arr = _np.array(lens, dtype=_np.float64)
        t_arr = _np.array(tots, dtype=_np.float64)
        eps_arr = _np.array(list(epsilons), dtype=_np.float64)[:, None]
        t_seq = eps_arr * l_arr + (1.0 - eps_arr) * t_arr
        worst = t_seq.max(axis=1)
        return [float(max(max_site_length, w)) for w in worst]
    out = []
    for eps in epsilons:
        worst = max(eps * ln + (1.0 - eps) * tt for ln, tt in zip(lens, tots))
        out.append(max(max_site_length, worst))
    return out
