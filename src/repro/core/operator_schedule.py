"""The OPERATORSCHEDULE list-scheduling heuristic (Section 5.3, Figure 3).

Scheduling a collection of independent query tasks — concurrently executable
operators forming producer/consumer pipelines — reduces to an instance of
the ``d``-dimensional *bin-design* problem (the dual of vector packing)
[CGJ84]: pack the ``N = sum_i N_i`` clone work vectors into ``P``
``d``-dimensional bins (the sites), subject to

* **(A)** no two vectors of the same operator in the same bin, and
* **(B)** the data-placement constraints of rooted operators,

minimizing the required common bin capacity, i.e. the maximum resource
usage in the system.  The problem is NP-hard (it contains classical
multiprocessor scheduling at ``d = 1``), so the paper uses a Graham-style
list scheduling heuristic [Gra66]:

1. place the work vectors of all rooted operators at their fixed sites;
2. compute the coarse-grain degree of parallelism
   ``N_i = min{N_max(op_i, f), P}`` for every floating operator and clone
   it into ``N_i`` work vectors;
3. consider the floating work vectors in non-increasing order of their
   maximum component ``l(w̄)``; pack each into the *least filled allowable*
   site — the site ``s`` with minimal ``l(work(s))`` among those holding no
   other clone of the same operator.

Theorem 5.1 bounds the makespan within ``2d + 1`` of the optimal schedule
with the same degrees of parallelism, and within ``2d(fd + 1) + 1`` of the
optimal ``CG_f`` schedule.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from contextlib import nullcontext
from dataclasses import dataclass

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.placement_heap import SiteHeap
from repro.core.resource_model import OverlapModel
from repro.obs.tracer import current_tracer
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone
from repro.core.work_vector import WorkVector

__all__ = ["RootedPlacement", "OperatorScheduleResult", "operator_schedule"]


@dataclass(frozen=True)
class RootedPlacement:
    """A rooted operator together with its fixed home.

    The clone work vectors are derived from ``spec`` exactly as for a
    floating operator of the same degree; only the placement is
    predetermined (e.g. a probe executing at the sites holding its hash
    table).

    Attributes
    ----------
    spec:
        The operator's requirements.
    site_indices:
        Site of each clone, by clone index (entry 0 hosts the coordinator).
    """

    spec: OperatorSpec
    site_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.site_indices:
            raise SchedulingError(
                f"rooted operator {self.spec.name!r} needs at least one site"
            )
        if len(set(self.site_indices)) != len(self.site_indices):
            raise SchedulingError(
                f"rooted operator {self.spec.name!r} repeats a site "
                f"{self.site_indices} (constraint (A))"
            )

    @property
    def degree(self) -> int:
        """The rooted operator's (fixed) degree of parallelism."""
        return len(self.site_indices)


@dataclass(frozen=True)
class OperatorScheduleResult:
    """Outcome of one OPERATORSCHEDULE invocation.

    Attributes
    ----------
    schedule:
        The clone-to-site mapping (constraints (A) and (B) hold).
    degrees:
        Chosen degree of parallelism per operator (floating and rooted).
    makespan:
        The Equation (3) response time of ``schedule``.
    """

    schedule: Schedule
    degrees: dict[str, int]
    makespan: float


def _check_unique_names(
    floating: Sequence[OperatorSpec], rooted: Sequence[RootedPlacement]
) -> None:
    seen: set[str] = set()
    for spec in [*floating, *(r.spec for r in rooted)]:
        if spec.name in seen:
            raise SchedulingError(f"duplicate operator name {spec.name!r}")
        seen.add(spec.name)


def _common_dimensionality(
    floating: Sequence[OperatorSpec], rooted: Sequence[RootedPlacement]
) -> int:
    specs = [*floating, *(r.spec for r in rooted)]
    if not specs:
        raise SchedulingError("nothing to schedule: no floating or rooted operators")
    d = specs[0].d
    for spec in specs:
        if spec.d != d:
            raise SchedulingError(
                f"operator {spec.name!r} has d={spec.d}; expected {d}"
            )
    return d


def operator_schedule(
    floating: Sequence[OperatorSpec],
    rooted: Sequence[RootedPlacement] = (),
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    f: float = 0.7,
    degrees: Mapping[str, int] | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
    metrics=None,
    capacities: Sequence[float] | None = None,
) -> OperatorScheduleResult:
    """Schedule concurrent operators on ``p`` sites (Figure 3).

    Parameters
    ----------
    floating:
        Operators whose parallelization and placement the scheduler is
        free to choose.
    rooted:
        Operators whose homes are fixed by data placement constraints.
    p:
        Number of system sites ``P``.
    comm:
        Communication-cost model (supplies ``alpha``, ``beta`` and the
        Proposition 4.1 degree bound).
    overlap:
        Overlap model mapping clone work vectors to sequential times.
    f:
        Granularity parameter of the ``CG_f`` restriction.
    degrees:
        Optional externally chosen degrees of parallelism for floating
        operators (used by the malleable scheduler of Section 7).  Any
        operator absent from the mapping falls back to the coarse-grain
        degree.
    policy:
        Startup-cost charging policy (EA1 default: half CPU, half network
        at the coordinator clone).
    metrics:
        Optional :class:`~repro.engine.metrics.MetricsRecorder`; when
        given, the kernel records ``placement_scans`` (heap entries
        examined during step 3), ``clones_placed``, and a
        ``list_schedule`` wall-clock timer.
    capacities:
        Optional per-site capacities for a heterogeneous cluster; the
        step 3 rule then minimizes the capacity-normalized length.
        Omitted (or all ``1.0``), the schedule is byte-identical to the
        homogeneous kernel.

    Returns
    -------
    OperatorScheduleResult
        Schedule, chosen degrees, and Equation (3) makespan.

    Raises
    ------
    InfeasibleScheduleError
        If a rooted placement or requested degree does not fit on ``p``
        sites.
    SchedulingError
        On duplicate names or inconsistent dimensionalities.
    """
    _check_unique_names(floating, rooted)
    d = _common_dimensionality(floating, rooted)
    schedule = Schedule(p, d, capacities)
    chosen: dict[str, int] = {}

    # Step 1: place the work vectors of all rooted operators at their
    # respective sites.
    for placement in rooted:
        n = placement.degree
        if n > p:
            raise InfeasibleScheduleError(
                f"rooted operator {placement.spec.name!r} has degree {n} > P={p}"
            )
        clones = clone_work_vectors(placement.spec, n, comm, policy)
        for k, (site_index, work) in enumerate(zip(placement.site_indices, clones)):
            if not 0 <= site_index < p:
                raise InfeasibleScheduleError(
                    f"rooted operator {placement.spec.name!r}: site {site_index} "
                    f"outside 0..{p - 1}"
                )
            schedule.place(
                site_index,
                PlacedClone(
                    operator=placement.spec.name,
                    clone_index=k,
                    work=work,
                    t_seq=overlap.t_seq(work),
                ),
            )
        chosen[placement.spec.name] = n

    # Step 2: degree of coarse-grain parallelism for every floating
    # operator, and the clone lists L_i.
    pending: list[tuple[float, str, int, WorkVector]] = []
    for spec in floating:
        if degrees is not None and spec.name in degrees:
            n = degrees[spec.name]
            if n < 1:
                raise SchedulingError(
                    f"operator {spec.name!r}: requested degree {n} < 1"
                )
            if n > p:
                raise InfeasibleScheduleError(
                    f"operator {spec.name!r}: requested degree {n} > P={p}"
                )
        else:
            n = coarse_grain_degree(spec, p, f, comm, overlap, policy)
        chosen[spec.name] = n
        for k, work in enumerate(clone_work_vectors(spec, n, comm, policy)):
            pending.append((work.length(), spec.name, k, work))

    # Step 3: list scheduling in non-increasing order of l(w̄); ties in the
    # vector order are broken deterministically by operator name and clone
    # index.  Among allowable sites, the rule picks one minimizing
    # l(work(s)) (Figure 3); sites tied on length are distinguished by
    # total load, then index — the paper permits any minimizer, and the
    # total-load tie-break avoids piling work onto a site whose length
    # happens to sit on a different resource.  The minimizer query goes
    # through a lazy min-heap (O(log p) amortized per clone) rather than a
    # site rescan; the key ends in the site index, so the heap minimum is
    # the exact site the linear scan would have chosen.
    timer = metrics.timer("list_schedule") if metrics is not None else nullcontext()
    with current_tracer().span("list_placement", clones=len(pending), p=p), timer:
        pending.sort(key=lambda item: (-item[0], item[1], item[2]))
        heap = SiteHeap(
            schedule.sites,
            key=lambda s: (
                s.normalized_length(),
                s.normalized_total_load(),
                s.index,
            ),
        )
        for _, op_name, k, work in pending:
            best = heap.pick(lambda s: not s.hosts_operator(op_name))
            if best is None:
                raise InfeasibleScheduleError(
                    f"no allowable site left for clone {k} of {op_name!r} "
                    f"(degree {chosen[op_name]} on P={p} sites)"
                )
            schedule.place(
                best.index,
                PlacedClone(
                    operator=op_name,
                    clone_index=k,
                    work=work,
                    t_seq=overlap.t_seq(work),
                ),
            )
            heap.update(best)
        if metrics is not None:
            metrics.count("placement_scans", heap.scans)
            metrics.count("clones_placed", len(pending))

    return OperatorScheduleResult(
        schedule=schedule, degrees=chosen, makespan=schedule.makespan()
    )
