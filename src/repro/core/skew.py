"""Execution skew: relaxing assumption EA1 (perfect work distribution).

EA1 assumes an operator's work vector is "distributed perfectly among all
sites participating in its execution".  Real partitionings skew —
hash-value distributions are uneven, keys are hot — and skew inflates
``T_par`` (Equation 1 is a max over clones) and congests the loaded
sites.  This module provides the machinery to *evaluate* a planned
schedule under a skewed realization:

* :func:`zipf_weights` — a one-parameter (``theta``) family of clone
  weights: ``theta = 0`` is uniform (EA1); larger ``theta`` concentrates
  work on low-indexed clones like a Zipf distribution;
* :func:`skewed_clone_work_vectors` — EA1-style cloning with the uniform
  split replaced by the weighted one (startup still goes to the
  coordinator clone);
* :func:`skewed_makespan` — re-evaluate an existing
  :class:`~repro.core.schedule.Schedule`'s Equation (3) response time
  with every operator's clones re-weighted but *kept at their planned
  homes*, measuring how robust a placement is to skew it did not plan
  for.

The scheduler itself still plans under EA1 (as the paper's does); the
``abl-skew`` benchmark reports how both TREESCHEDULE's and SYNCHRONOUS's
plans hold up as ``theta`` grows.

A subtlety worth knowing: skew does **not** always slow a plan down.
Moving work toward an operator's coordinator clone can *relieve*
congestion at some other, busier site that hosted one of its
non-coordinator clones, occasionally reducing a phase's makespan.  What
is guaranteed (and property-tested) is that a phase's skewed makespan
never falls below the planned slowest-operator time — the coordinator
clone only ever gains work.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.exceptions import ConfigurationError, SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
)
from repro.core.granularity import CommunicationModel
from repro.core.resource_model import OverlapModel
from repro.core.schedule import PhasedSchedule, Schedule
from repro.core.site import PlacedClone, Site
from repro.core.work_vector import WorkVector

__all__ = [
    "zipf_weights",
    "skewed_clone_work_vectors",
    "skewed_makespan",
    "skewed_response_time",
]


def zipf_weights(n: int, theta: float) -> list[float]:
    """Normalized Zipf(``theta``) weights for ``n`` clones.

    ``weight_k ∝ 1 / (k + 1)^theta``; ``theta = 0`` gives the uniform
    EA1 split, ``theta = 1`` a classic Zipf profile.
    """
    if n < 1:
        raise ConfigurationError(f"clone count must be >= 1, got {n}")
    if theta < 0.0:
        raise ConfigurationError(f"skew parameter must be >= 0, got {theta}")
    raw = [1.0 / (k + 1) ** theta for k in range(n)]
    total = math.fsum(raw)
    return [w / total for w in raw]


def skewed_clone_work_vectors(
    spec: OperatorSpec,
    n: int,
    comm: CommunicationModel,
    theta: float,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> list[WorkVector]:
    """Partition ``spec`` into ``n`` clones with Zipf(``theta``) weights.

    Reduces to :func:`repro.core.cloning.clone_work_vectors` at
    ``theta = 0``.  The clone-vector sum (hence the Section 5.1 area
    accounting) is identical for every ``theta``; only the balance moves.
    """
    weights = zipf_weights(n, theta)
    d = spec.d
    net_axis = policy.network_axis if policy.network_axis is not None else d - 1
    base = spec.work + WorkVector.unit(d, net_axis, comm.transfer_cost(spec.data_volume))
    clones = [base * w for w in weights]
    startup = comm.startup_cost(n)
    if startup > 0.0:
        clones[0] = clones[0] + policy.startup_vector(d, startup)
    return clones


def skewed_makespan(
    schedule: Schedule,
    specs: Mapping[str, OperatorSpec],
    theta: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> float:
    """Equation (3) makespan of ``schedule`` under skewed clone weights.

    Every operator keeps its planned home and clone ordering (clone 0,
    the heaviest under skew, stays on the coordinator's site); only the
    clone work vectors change.

    Parameters
    ----------
    schedule:
        A planned (EA1) schedule.
    specs:
        Operator specs by name, covering every operator in ``schedule``.
    theta:
        Skew parameter (0 reproduces the planned makespan exactly).
    """
    sites = [Site(j, schedule.d) for j in range(schedule.p)]
    for name in schedule.operators:
        try:
            spec = specs[name]
        except KeyError:
            raise SchedulingError(f"no spec supplied for operator {name!r}") from None
        home = schedule.home(name)
        clones = skewed_clone_work_vectors(spec, home.degree, comm, theta, policy)
        for k, site_index in enumerate(home.site_indices):
            sites[site_index].place(
                PlacedClone(
                    operator=name,
                    clone_index=k,
                    work=clones[k],
                    t_seq=overlap.t_seq(clones[k]),
                )
            )
    return max((site.t_site() for site in sites), default=0.0)


def skewed_response_time(
    phased: PhasedSchedule,
    specs: Mapping[str, OperatorSpec],
    theta: float,
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> float:
    """Summed-phase response time of a phased schedule under skew."""
    return math.fsum(
        skewed_makespan(schedule, specs, theta, comm, overlap, policy)
        for schedule in phased.phases
    )
