"""Exact (exponential-time) optimal scheduling for small instances.

The bin-design problem underlying OPERATORSCHEDULE is NP-hard, so no
polynomial exact algorithm is expected; this module provides a
branch-and-bound solver for *small* instances, used to

* verify experimentally that the list-scheduling heuristic's performance
  ratio stays far inside the Theorem 5.1 guarantee, and
* exercise the heuristic against the true optimum in the test-suite
  (rather than only against the ``LB`` lower bound).

The search assigns clone work vectors to sites depth-first, pruning
branches whose partial Equation (3) makespan already reaches the
incumbent.  Site-symmetry is broken by allowing a clone into at most one
currently-empty site.  Complexity is ``O(P^N)`` in the worst case; callers
should keep ``N`` (total clones) below ~12.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import operator_schedule
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone
from repro.core.work_vector import WorkVector

__all__ = ["OptimalResult", "optimal_schedule", "optimal_malleable_makespan"]

#: Safety cap on the number of clones the exact solver will accept.
MAX_EXACT_CLONES = 16


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of the exact solver.

    Attributes
    ----------
    schedule:
        An optimal clone-to-site mapping.
    degrees:
        The degrees of parallelism that were searched (fixed inputs).
    makespan:
        The optimal Equation (3) response time.
    nodes_explored:
        Size of the explored search tree (diagnostics).
    """

    schedule: Schedule
    degrees: dict[str, int]
    makespan: float
    nodes_explored: int


def _clone_list(
    specs: Sequence[OperatorSpec],
    degrees: Mapping[str, int],
    comm: CommunicationModel,
    overlap: OverlapModel,
    policy: CoordinatorPolicy,
) -> list[tuple[str, int, WorkVector, float]]:
    clones: list[tuple[str, int, WorkVector, float]] = []
    for spec in specs:
        n = degrees[spec.name]
        for k, work in enumerate(clone_work_vectors(spec, n, comm, policy)):
            clones.append((spec.name, k, work, overlap.t_seq(work)))
    # Largest-first ordering makes the branch-and-bound prune dramatically
    # earlier (the same intuition as LPT list scheduling).
    clones.sort(key=lambda c: (-c[2].length(), c[0], c[1]))
    return clones


def optimal_schedule(
    specs: Sequence[OperatorSpec],
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    degrees: Mapping[str, int] | None = None,
    f: float = 0.7,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> OptimalResult:
    """Find an optimal schedule for fixed degrees of parallelism.

    ``degrees`` defaults to the coarse-grain degrees (Proposition 4.1 with
    A4 enforcement) — i.e. the same parallelization OPERATORSCHEDULE would
    use — so heuristic-vs-optimal comparisons are apples-to-apples
    (Theorem 5.1(a)'s setting).

    Raises
    ------
    SchedulingError
        If the instance exceeds :data:`MAX_EXACT_CLONES` clones.
    """
    if not specs:
        raise SchedulingError("optimal_schedule requires at least one operator")
    if degrees is None:
        degrees = {
            spec.name: coarse_grain_degree(spec, p, f, comm, overlap, policy)
            for spec in specs
        }
    clones = _clone_list(specs, degrees, comm, overlap, policy)
    if len(clones) > MAX_EXACT_CLONES:
        raise SchedulingError(
            f"exact solver limited to {MAX_EXACT_CLONES} clones, got {len(clones)}"
        )
    d = specs[0].d

    # Incumbent: the heuristic solution (a valid upper bound that also
    # guarantees the solver returns a schedule even if pruning is tight).
    heuristic = operator_schedule(
        specs, (), p=p, comm=comm, overlap=overlap, degrees=degrees, policy=policy
    )
    best_makespan = heuristic.makespan
    best_assignment: list[int] | None = [
        heuristic.schedule.home(name).site_indices[k] for name, k, _, _ in clones
    ]

    # The max stand-alone clone time is a floor for every completion.
    t_floor = max(t for _, _, _, t in clones)

    loads = [[0.0] * d for _ in range(p)]
    site_ops: list[set[str]] = [set() for _ in range(p)]
    assignment = [-1] * len(clones)
    nodes = 0

    def partial_makespan() -> float:
        return max(max(load) for load in loads)

    def dfs(idx: int, used_sites: int) -> None:
        nonlocal best_makespan, best_assignment, nodes
        nodes += 1
        if idx == len(clones):
            span = max(t_floor, partial_makespan())
            if span < best_makespan - 1e-15:
                best_makespan = span
                best_assignment = list(assignment)
            return
        name, _, work, t_seq = clones[idx]
        tried_empty = False
        for j in range(p):
            empty = not site_ops[j] and all(c == 0.0 for c in loads[j])
            if empty:
                if tried_empty:
                    continue  # site symmetry: one empty site suffices
                tried_empty = True
            if name in site_ops[j]:
                continue
            # Tentatively place and prune on the partial bound.
            for i, c in enumerate(work.components):
                loads[j][i] += c
            new_len = max(loads[j])
            if max(t_seq, t_floor, new_len) < best_makespan - 1e-15:
                site_ops[j].add(name)
                assignment[idx] = j
                dfs(idx + 1, used_sites + (1 if empty else 0))
                assignment[idx] = -1
                site_ops[j].discard(name)
            for i, c in enumerate(work.components):
                loads[j][i] -= c
        return

    dfs(0, 0)

    schedule = Schedule(p, d)
    assert best_assignment is not None
    for (name, k, work, t_seq), j in zip(clones, best_assignment):
        schedule.place(
            j, PlacedClone(operator=name, clone_index=k, work=work, t_seq=t_seq)
        )
    return OptimalResult(
        schedule=schedule,
        degrees=dict(degrees),
        makespan=schedule.makespan(),
        nodes_explored=nodes,
    )


def optimal_malleable_makespan(
    specs: Sequence[OperatorSpec],
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    max_degree: int | None = None,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> float:
    """Brute-force the optimum over *all* parallelizations (tiny instances).

    Enumerates every degree vector in ``{1..max_degree}^M`` (``max_degree``
    defaults to ``P``) and solves each resulting fixed-degree problem
    exactly.  Used by tests to validate the Theorem 7.1 guarantee of the
    malleable scheduler.  Exponential in ``M``; keep ``M <= 3`` and
    ``P <= 4``.
    """
    if not specs:
        raise SchedulingError("need at least one operator")
    cap = max_degree if max_degree is not None else p
    cap = min(cap, p)
    best = float("inf")
    for combo in itertools.product(range(1, cap + 1), repeat=len(specs)):
        degrees = {spec.name: n for spec, n in zip(specs, combo)}
        if sum(combo) > MAX_EXACT_CLONES:
            continue
        result = optimal_schedule(
            specs, p=p, comm=comm, overlap=overlap, degrees=degrees, policy=policy
        )
        best = min(best, result.makespan)
    return best
