"""Generic d-dimensional bin-design heuristics (ablation of Section 5.5).

OPERATORSCHEDULE instantiates one point in a family of vector-packing
heuristics: *sort by maximum component, place on the least-filled
allowable site*.  Section 5.5 argues (citing the probabilistic analysis of
Karp, Luby and Marchetti-Spaccamela [KLMS84]) that even simple
vector-packing rules waste little bin capacity on average.  This module
implements the surrounding design space so the claim can be tested:

* **sort keys** — non-increasing maximum component (the paper's choice),
  non-increasing component sum, input order, random order;
* **placement rules** — least filled by current length ``l(work(s))``
  (the paper's choice), minimal *resulting* length after placement,
  round-robin, first fit, random allowable site.

All rules respect constraint (A) (no two clones of one operator on a
site), so every produced packing is a feasible Definition 5.1 schedule.

Kernel performance
------------------
:func:`pack_vectors` is the inner loop of every figure sweep, so its
placement step is engineered to avoid rescans:

* ``LEAST_LOADED_LENGTH`` has two fast paths.  At or above
  :data:`~repro.core.batch.NUMPY_CUTOVER` clones (numpy present) the
  whole shelf goes through the array-shaped kernel
  :func:`~repro.core.batch.pack_least_loaded_batch` — site state lives
  in flat arrays, the per-clone choice is a C-speed ``argmin``, and the
  chosen assignment is committed in one
  :meth:`~repro.core.schedule.Schedule.place_batch` call.  Below the
  cutover (or without numpy) it consults a lazy min-heap
  (:class:`~repro.core.placement_heap.SiteHeap`) keyed on the
  capacity-normalized length ``(l(work(s))/capacity, index)`` — equal to
  ``(l(work(s)), index)`` bit-for-bit on a homogeneous cluster — giving
  O(log p) amortized placement instead of an O(p) scan per clone;
* ``FIRST_FIT`` early-exits at the lowest-indexed allowable site and —
  like every other non-heap rule — never constructs or maintains a
  :class:`SiteHeap` (heap construction is gated on the rule, so linear
  rules pay zero heap overhead);
* ``MIN_RESULTING_LENGTH`` evaluates the tentative length in O(d) off the
  site's running load vector without materializing the sum;
* every allowability test is the O(1) per-site operator-set lookup.

All fast paths — including the numpy batch kernel, which uses only
bit-stable element-wise arithmetic — are deterministic and bit-identical
to the naive rescanning rule, which is retained as
:func:`pack_vectors_reference` and asserted equivalent by the
golden-packing test-suite.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass
from enum import Enum

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core import batch as _batch
from repro.core.placement_heap import SiteHeap, least_loaded_key
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.obs.tracer import current_tracer
from repro.core.site import PlacedClone
from repro.core.work_vector import WorkVector

__all__ = [
    "SortKey",
    "PlacementRule",
    "CloneItem",
    "pack_vectors",
    "pack_vectors_reference",
]


class SortKey(Enum):
    """Order in which clone work vectors are considered."""

    #: Non-increasing ``l(w̄)`` — the Figure 3 rule.
    MAX_COMPONENT = "max_component"
    #: Non-increasing component sum (scalar-work LPT).
    TOTAL = "total"
    #: The caller-provided order.
    INPUT_ORDER = "input_order"
    #: A uniformly random permutation (requires ``rng``).
    RANDOM = "random"


class PlacementRule(Enum):
    """How the target site is chosen among the allowable ones."""

    #: Minimal current ``l(work(s))`` — the Figure 3 rule.
    LEAST_LOADED_LENGTH = "least_loaded_length"
    #: Minimal ``l(work(s) ∪ {w̄})`` after the tentative placement.
    MIN_RESULTING_LENGTH = "min_resulting_length"
    #: Cycle through sites in index order.
    ROUND_ROBIN = "round_robin"
    #: Lowest-indexed allowable site.
    FIRST_FIT = "first_fit"
    #: Uniformly random allowable site (requires ``rng``).
    RANDOM = "random"


@dataclass(frozen=True)
class CloneItem:
    """One clone work vector to pack.

    Attributes
    ----------
    operator:
        Owning operator's name (constraint (A) key).
    clone_index:
        Clone index within the operator.
    work:
        The clone's work vector.
    """

    operator: str
    clone_index: int
    work: WorkVector


def _sorted_items(
    items: Sequence[CloneItem], sort: SortKey, rng: random.Random | None
) -> list[CloneItem]:
    if sort is SortKey.MAX_COMPONENT:
        return sorted(
            items, key=lambda c: (-c.work.length(), c.operator, c.clone_index)
        )
    if sort is SortKey.TOTAL:
        return sorted(
            items, key=lambda c: (-c.work.total(), c.operator, c.clone_index)
        )
    if sort is SortKey.INPUT_ORDER:
        return list(items)
    if sort is SortKey.RANDOM:
        if rng is None:
            raise SchedulingError("SortKey.RANDOM requires an rng")
        shuffled = list(items)
        rng.shuffle(shuffled)
        return shuffled
    raise SchedulingError(f"unknown sort key {sort!r}")


def _no_allowable_site(item: CloneItem) -> InfeasibleScheduleError:
    return InfeasibleScheduleError(
        f"no allowable site for clone {item.clone_index} of {item.operator!r}"
    )


def _choose_site_linear(
    schedule: Schedule,
    item: CloneItem,
    rule: PlacementRule,
    rng: random.Random | None,
    rr_state: list[int],
) -> tuple[int, int]:
    """Pick a site under one of the non-heap rules.

    Returns ``(site_index, sites_scanned)``; the scan count feeds the
    ``placement_scans`` instrumentation counter.
    """
    if rule is PlacementRule.MIN_RESULTING_LENGTH:
        best = -1
        best_len = 0.0
        scanned = 0
        for site in schedule.sites:
            scanned += 1
            if site.hosts_operator(item.operator):
                continue
            resulting = site.normalized_resulting_length(item.work)
            if best < 0 or resulting < best_len:
                best = site.index
                best_len = resulting
        if best < 0:
            raise _no_allowable_site(item)
        return best, scanned
    if rule is PlacementRule.ROUND_ROBIN:
        p = schedule.p
        for offset in range(p):
            j = (rr_state[0] + offset) % p
            if not schedule.site(j).hosts_operator(item.operator):
                rr_state[0] = (j + 1) % p
                return j, offset + 1
        raise _no_allowable_site(item)
    if rule is PlacementRule.FIRST_FIT:
        # Early exit: the first allowable site in index order IS the
        # answer — no need to materialize the allowable set.
        for site in schedule.sites:
            if not site.hosts_operator(item.operator):
                return site.index, site.index + 1
        raise _no_allowable_site(item)
    if rule is PlacementRule.RANDOM:
        if rng is None:
            raise SchedulingError("PlacementRule.RANDOM requires an rng")
        allowable = [
            site.index
            for site in schedule.sites
            if not site.hosts_operator(item.operator)
        ]
        if not allowable:
            raise _no_allowable_site(item)
        return rng.choice(allowable), schedule.p
    raise SchedulingError(f"unknown placement rule {rule!r}")


def _validate_items(items: Sequence[CloneItem]) -> int:
    if not items:
        raise SchedulingError("pack_vectors requires at least one clone item")
    d = items[0].work.d
    for item in items:
        if item.work.d != d:
            raise SchedulingError(
                f"clone of {item.operator!r} has d={item.work.d}; expected {d}"
            )
    return d


def pack_vectors(
    items: Sequence[CloneItem],
    *,
    p: int,
    overlap: OverlapModel,
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    rng: random.Random | None = None,
    metrics=None,
    capacities: Sequence[float] | None = None,
) -> Schedule:
    """Pack clone work vectors into ``p`` sites under the chosen heuristic.

    ``sort=MAX_COMPONENT, rule=LEAST_LOADED_LENGTH`` reproduces the core
    packing step of OPERATORSCHEDULE exactly (given the same clone
    vectors); other combinations populate the ablation grid of the
    ``abl-pack`` benchmark.

    ``capacities`` optionally makes the cluster heterogeneous: load-aware
    rules then compare *capacity-normalized* lengths
    (``l(work(s)) / capacity``).  Omitted (or all ``1.0``) the packing is
    byte-identical to the homogeneous kernel.

    ``metrics`` optionally takes a
    :class:`~repro.engine.metrics.MetricsRecorder`; the kernel then
    records ``placement_scans`` (site/heap entries examined),
    ``clones_packed``, and a ``pack_vectors`` wall-clock timer.

    Returns the resulting :class:`Schedule`, whose :meth:`Schedule.makespan`
    is the Equation (3) response time of the packing.
    """
    d = _validate_items(items)
    schedule = Schedule(p, d, capacities)
    timer = metrics.timer("pack_vectors") if metrics is not None else nullcontext()
    with current_tracer().span(
        "pack_vectors", items=len(items), p=p, sort=sort.value, rule=rule.value
    ), timer:
        ordered = _sorted_items(items, sort, rng)
        scans = 0
        if rule is PlacementRule.LEAST_LOADED_LENGTH:
            scans = _pack_least_loaded(schedule, ordered, overlap)
        else:
            # Linear rules (FIRST_FIT, ROUND_ROBIN, …) never construct or
            # maintain a SiteHeap: heap work is gated on the rule, so
            # e.g. FIRST_FIT pays only its own early-exit scans
            # (observable through the placement_scans counter).
            rr_state = [0]
            for item in ordered:
                j, examined = _choose_site_linear(schedule, item, rule, rng, rr_state)
                scans += examined
                schedule.place(
                    j,
                    PlacedClone(
                        operator=item.operator,
                        clone_index=item.clone_index,
                        work=item.work,
                        t_seq=overlap.t_seq(item.work),
                    ),
                )
        if metrics is not None:
            metrics.count("placement_scans", scans)
            metrics.count("clones_packed", len(items))
    return schedule


def _pack_least_loaded(
    schedule: Schedule,
    ordered: list[CloneItem],
    overlap: OverlapModel,
) -> int:
    """Place pre-sorted clones under the ``LEAST_LOADED_LENGTH`` rule.

    Tries the array-shaped batch kernel first (numpy present and the
    shelf at least :data:`~repro.core.batch.NUMPY_CUTOVER` clones); the
    whole assignment is then computed in flat arrays and committed with
    one :meth:`Schedule.place_batch` call.  Otherwise falls back to the
    exact pure-Python lazy-heap loop.  Both paths produce byte-identical
    schedules.  Returns the placement-scan count (one bulk argmin per
    clone on the batch path; heap pops on the heap path).
    """
    assignment = _batch.pack_least_loaded_batch(
        [item.work.components for item in ordered],
        [item.operator for item in ordered],
        schedule.p,
        schedule.d,
        clone_indices=[item.clone_index for item in ordered],
        initial_sites=schedule.sites if schedule.clone_count() else None,
        capacities=(
            None if schedule.is_uniform_capacity() else schedule.capacities()
        ),
    )
    if assignment is not None:
        t_seqs = overlap.t_seq_batch([item.work for item in ordered])
        schedule.place_batch(
            [
                (
                    j,
                    PlacedClone(
                        operator=item.operator,
                        clone_index=item.clone_index,
                        work=item.work,
                        t_seq=t,
                    ),
                )
                for j, item, t in zip(assignment, ordered, t_seqs)
            ]
        )
        return len(ordered)
    heap = SiteHeap(schedule.sites, key=least_loaded_key)
    for item in ordered:
        op = item.operator
        site = heap.pick(lambda s: not s.hosts_operator(op))
        if site is None:
            raise _no_allowable_site(item)
        j = site.index
        schedule.place(
            j,
            PlacedClone(
                operator=item.operator,
                clone_index=item.clone_index,
                work=item.work,
                t_seq=overlap.t_seq(item.work),
            ),
        )
        heap.update(schedule.site(j))
    return heap.scans


# ----------------------------------------------------------------------
# Naive reference implementation (retained for the golden tests)
# ----------------------------------------------------------------------
def _reference_site_length(site) -> float:
    """Recompute ``l(work(s))`` from the resident clones, ignoring caches."""
    if not len(site):
        return 0.0
    acc = [0.0] * site.d
    for clone in site.clones:
        for i, c in enumerate(clone.work.components):
            acc[i] += c
    return max(acc)


def _choose_site_reference(
    schedule: Schedule,
    item: CloneItem,
    rule: PlacementRule,
    rng: random.Random | None,
    rr_state: list[int],
) -> int:
    """The original O(p·d·clones) placement rule, kept verbatim in spirit.

    Builds the full allowable list and recomputes site loads from the
    placed clones; the optimized paths must match its choices exactly.
    """
    allowable = [
        site for site in schedule.sites if not site.hosts_operator(item.operator)
    ]
    if not allowable:
        raise _no_allowable_site(item)
    if rule is PlacementRule.LEAST_LOADED_LENGTH:
        return min(
            allowable,
            key=lambda s: (_reference_site_length(s) / s.capacity, s.index),
        ).index
    if rule is PlacementRule.MIN_RESULTING_LENGTH:
        def resulting(site) -> float:
            load = site.load_vector()
            return max(
                a + b for a, b in zip(load.components, item.work.components)
            ) / site.capacity
        return min(allowable, key=lambda s: (resulting(s), s.index)).index
    if rule is PlacementRule.ROUND_ROBIN:
        p = schedule.p
        for offset in range(p):
            j = (rr_state[0] + offset) % p
            if not schedule.site(j).hosts_operator(item.operator):
                rr_state[0] = (j + 1) % p
                return j
        raise _no_allowable_site(item)
    if rule is PlacementRule.FIRST_FIT:
        return min(allowable, key=lambda s: s.index).index
    if rule is PlacementRule.RANDOM:
        if rng is None:
            raise SchedulingError("PlacementRule.RANDOM requires an rng")
        return rng.choice(allowable).index
    raise SchedulingError(f"unknown placement rule {rule!r}")


def pack_vectors_reference(
    items: Sequence[CloneItem],
    *,
    p: int,
    overlap: OverlapModel,
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    rng: random.Random | None = None,
    capacities: Sequence[float] | None = None,
) -> Schedule:
    """Naive rescanning variant of :func:`pack_vectors`.

    Kept as the semantic oracle: same signature, same deterministic
    tie-breaking, no heap, no cached site statistics.  The golden tests
    assert ``schedule_to_dict`` equality against :func:`pack_vectors` for
    every sort × rule combination (homogeneous and heterogeneous);
    benchmarks use it as the "before" kernel when recording speedups.
    """
    d = _validate_items(items)
    schedule = Schedule(p, d, capacities)
    rr_state = [0]
    for item in _sorted_items(items, sort, rng):
        j = _choose_site_reference(schedule, item, rule, rng, rr_state)
        schedule.place(
            j,
            PlacedClone(
                operator=item.operator,
                clone_index=item.clone_index,
                work=item.work,
                t_seq=overlap.t_seq(item.work),
            ),
        )
    return schedule
