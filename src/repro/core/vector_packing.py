"""Generic d-dimensional bin-design heuristics (ablation of Section 5.5).

OPERATORSCHEDULE instantiates one point in a family of vector-packing
heuristics: *sort by maximum component, place on the least-filled
allowable site*.  Section 5.5 argues (citing the probabilistic analysis of
Karp, Luby and Marchetti-Spaccamela [KLMS84]) that even simple
vector-packing rules waste little bin capacity on average.  This module
implements the surrounding design space so the claim can be tested:

* **sort keys** — non-increasing maximum component (the paper's choice),
  non-increasing component sum, input order, random order;
* **placement rules** — least filled by current length ``l(work(s))``
  (the paper's choice), minimal *resulting* length after placement,
  round-robin, first fit, random allowable site.

All rules respect constraint (A) (no two clones of one operator on a
site), so every produced packing is a feasible Definition 5.1 schedule.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.resource_model import OverlapModel
from repro.core.schedule import Schedule
from repro.core.site import PlacedClone
from repro.core.work_vector import WorkVector

__all__ = ["SortKey", "PlacementRule", "CloneItem", "pack_vectors"]


class SortKey(Enum):
    """Order in which clone work vectors are considered."""

    #: Non-increasing ``l(w̄)`` — the Figure 3 rule.
    MAX_COMPONENT = "max_component"
    #: Non-increasing component sum (scalar-work LPT).
    TOTAL = "total"
    #: The caller-provided order.
    INPUT_ORDER = "input_order"
    #: A uniformly random permutation (requires ``rng``).
    RANDOM = "random"


class PlacementRule(Enum):
    """How the target site is chosen among the allowable ones."""

    #: Minimal current ``l(work(s))`` — the Figure 3 rule.
    LEAST_LOADED_LENGTH = "least_loaded_length"
    #: Minimal ``l(work(s) ∪ {w̄})`` after the tentative placement.
    MIN_RESULTING_LENGTH = "min_resulting_length"
    #: Cycle through sites in index order.
    ROUND_ROBIN = "round_robin"
    #: Lowest-indexed allowable site.
    FIRST_FIT = "first_fit"
    #: Uniformly random allowable site (requires ``rng``).
    RANDOM = "random"


@dataclass(frozen=True)
class CloneItem:
    """One clone work vector to pack.

    Attributes
    ----------
    operator:
        Owning operator's name (constraint (A) key).
    clone_index:
        Clone index within the operator.
    work:
        The clone's work vector.
    """

    operator: str
    clone_index: int
    work: WorkVector


def _sorted_items(
    items: Sequence[CloneItem], sort: SortKey, rng: random.Random | None
) -> list[CloneItem]:
    if sort is SortKey.MAX_COMPONENT:
        return sorted(
            items, key=lambda c: (-c.work.length(), c.operator, c.clone_index)
        )
    if sort is SortKey.TOTAL:
        return sorted(
            items, key=lambda c: (-c.work.total(), c.operator, c.clone_index)
        )
    if sort is SortKey.INPUT_ORDER:
        return list(items)
    if sort is SortKey.RANDOM:
        if rng is None:
            raise SchedulingError("SortKey.RANDOM requires an rng")
        shuffled = list(items)
        rng.shuffle(shuffled)
        return shuffled
    raise SchedulingError(f"unknown sort key {sort!r}")


def _choose_site(
    schedule: Schedule,
    item: CloneItem,
    rule: PlacementRule,
    rng: random.Random | None,
    rr_state: list[int],
) -> int:
    allowable = [
        site for site in schedule.sites if not site.hosts_operator(item.operator)
    ]
    if not allowable:
        raise InfeasibleScheduleError(
            f"no allowable site for clone {item.clone_index} of {item.operator!r}"
        )
    if rule is PlacementRule.LEAST_LOADED_LENGTH:
        return min(
            allowable,
            key=lambda s: ((s.length() if not s.is_empty() else 0.0), s.index),
        ).index
    if rule is PlacementRule.MIN_RESULTING_LENGTH:
        def resulting(site) -> float:
            load = site.load_vector()
            return max(
                a + b for a, b in zip(load.components, item.work.components)
            )
        return min(allowable, key=lambda s: (resulting(s), s.index)).index
    if rule is PlacementRule.ROUND_ROBIN:
        p = schedule.p
        for offset in range(p):
            j = (rr_state[0] + offset) % p
            if not schedule.site(j).hosts_operator(item.operator):
                rr_state[0] = (j + 1) % p
                return j
        raise InfeasibleScheduleError(
            f"no allowable site for clone {item.clone_index} of {item.operator!r}"
        )
    if rule is PlacementRule.FIRST_FIT:
        return min(allowable, key=lambda s: s.index).index
    if rule is PlacementRule.RANDOM:
        if rng is None:
            raise SchedulingError("PlacementRule.RANDOM requires an rng")
        return rng.choice(allowable).index
    raise SchedulingError(f"unknown placement rule {rule!r}")


def pack_vectors(
    items: Sequence[CloneItem],
    *,
    p: int,
    overlap: OverlapModel,
    sort: SortKey = SortKey.MAX_COMPONENT,
    rule: PlacementRule = PlacementRule.LEAST_LOADED_LENGTH,
    rng: random.Random | None = None,
) -> Schedule:
    """Pack clone work vectors into ``p`` sites under the chosen heuristic.

    ``sort=MAX_COMPONENT, rule=LEAST_LOADED_LENGTH`` reproduces the core
    packing step of OPERATORSCHEDULE exactly (given the same clone
    vectors); other combinations populate the ablation grid of the
    ``abl-pack`` benchmark.

    Returns the resulting :class:`Schedule`, whose :meth:`Schedule.makespan`
    is the Equation (3) response time of the packing.
    """
    if not items:
        raise SchedulingError("pack_vectors requires at least one clone item")
    d = items[0].work.d
    for item in items:
        if item.work.d != d:
            raise SchedulingError(
                f"clone of {item.operator!r} has d={item.work.d}; expected {d}"
            )
    schedule = Schedule(p, d)
    rr_state = [0]
    for item in _sorted_items(items, sort, rng):
        j = _choose_site(schedule, item, rule, rng, rr_state)
        schedule.place(
            j,
            PlacedClone(
                operator=item.operator,
                clone_index=item.clone_index,
                work=item.work,
                t_seq=overlap.t_seq(item.work),
            ),
        )
    return schedule
