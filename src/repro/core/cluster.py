"""Cluster topology: named site classes with relative capacities.

The paper's model assumes ``P`` identical sites.  Real clusters drift
from that ideal — successive hardware generations, partially degraded
nodes, deliberately tiered tenancy — so the library carries an explicit
:class:`ClusterSpec`: an ordered list of *site classes*, each a
``(name, count, capacity)`` triple.  Capacity is a relative speed: a
site of capacity ``c`` processes every resource dimension ``c`` times
faster than a unit site, so its time contribution is
``length / c`` (see :class:`repro.core.site.Site`).

Sites are numbered class by class, in declaration order; the flattened
:meth:`ClusterSpec.capacities` tuple is what the packing kernels and the
simulator consume.  The load-bearing invariant of the whole capacity
model: **a uniform spec (all capacities 1.0) must leave every algorithm
byte-identical to the historical homogeneous code path.**  To make that
effortless for callers, :meth:`ClusterSpec.capacities_or_none` returns
``None`` for uniform specs — the sentinel all kernels interpret as "use
the homogeneous fast path".

Specs parse from a compact CLI string (``--cluster``)::

    fast:4:2.0,slow:12:0.5      # 4 sites at 2x, 12 sites at 0.5x
    8                           # shorthand: 8 unit-capacity sites

and round-trip through JSON via :func:`repro.serialization` so they can
be hashed into result-store keys.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["SiteClass", "ClusterSpec", "parse_cluster_spec"]


def _check_capacity(capacity: float, label: str) -> float:
    capacity = float(capacity)
    if not capacity > 0.0 or capacity != capacity or capacity == float("inf"):
        raise ConfigurationError(
            f"site class {label!r}: capacity must be positive and finite, "
            f"got {capacity!r}"
        )
    return capacity


@dataclass(frozen=True)
class SiteClass:
    """A homogeneous group of sites within a heterogeneous cluster.

    Attributes
    ----------
    name:
        Human label (``"fast"``, ``"gen2"``); must be non-empty and free
        of the spec-string delimiters ``:`` and ``,``.
    count:
        Number of sites in the class (>= 1).
    capacity:
        Relative speed of each site (> 0, finite); 1.0 is the paper's
        unit site.
    """

    name: str
    count: int
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("site class name must be non-empty")
        if ":" in self.name or "," in self.name:
            raise ConfigurationError(
                f"site class name {self.name!r} may not contain ':' or ','"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"site class {self.name!r}: count must be >= 1, got {self.count}"
            )
        _check_capacity(self.capacity, self.name)


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered collection of site classes describing the whole cluster.

    Site indices are assigned class by class in declaration order:
    ``fast:2:2.0,slow:3:0.5`` yields sites 0-1 at capacity 2.0 and sites
    2-4 at capacity 0.5.
    """

    classes: tuple[SiteClass, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ConfigurationError("cluster spec needs at least one site class")
        seen: set[str] = set()
        for cls in self.classes:
            if not isinstance(cls, SiteClass):
                raise ConfigurationError(
                    f"cluster spec entries must be SiteClass, got {cls!r}"
                )
            if cls.name in seen:
                raise ConfigurationError(
                    f"duplicate site class name {cls.name!r}"
                )
            seen.add(cls.name)

    @staticmethod
    def uniform(p: int, capacity: float = 1.0, name: str = "site") -> "ClusterSpec":
        """A single-class cluster of ``p`` sites at ``capacity`` each."""
        if p < 1:
            raise ConfigurationError(f"cluster must have >= 1 sites, got {p}")
        return ClusterSpec((SiteClass(name=name, count=p, capacity=capacity),))

    @property
    def p(self) -> int:
        """Total number of sites across all classes."""
        return sum(cls.count for cls in self.classes)

    def capacities(self) -> tuple[float, ...]:
        """The per-site capacity vector, in site-index order."""
        caps: list[float] = []
        for cls in self.classes:
            caps.extend([cls.capacity] * cls.count)
        return tuple(caps)

    def capacities_or_none(self) -> tuple[float, ...] | None:
        """Capacities, or ``None`` when the spec is uniform at 1.0.

        ``None`` is the sentinel every kernel reads as "homogeneous fast
        path" — returning it here keeps uniform specs byte-identical to
        runs that never mention a cluster at all.
        """
        return None if self.is_uniform() else self.capacities()

    def total_capacity(self) -> float:
        """Total system capacity ``C = sum_j c_j``.

        For a uniform spec this is exactly ``float(p)`` (a sum of ``p``
        ones is exact for any realistic ``p``), so congestion bounds
        ``l(S)/C`` stay bit-identical to the historical ``l(S)/P``.
        """
        return sum(cls.capacity * cls.count for cls in self.classes)

    def is_uniform(self) -> bool:
        """``True`` when every site has capacity exactly 1.0."""
        return all(cls.capacity == 1.0 for cls in self.classes)

    def spec_string(self) -> str:
        """The compact ``name:count:capacity,...`` form (parse inverse)."""
        return ",".join(
            f"{cls.name}:{cls.count}:{cls.capacity!r}" for cls in self.classes
        )


def parse_cluster_spec(text: str) -> ClusterSpec:
    """Parse the ``--cluster`` CLI syntax into a :class:`ClusterSpec`.

    Two forms are accepted:

    * ``"<p>"`` — a bare integer: ``p`` unit-capacity sites;
    * ``"name:count:capacity[,name:count:capacity...]"`` — explicit site
      classes (capacity may be omitted per class, defaulting to 1.0).

    Raises
    ------
    ConfigurationError
        On empty input, malformed fields, or duplicate class names.
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("cluster spec must be non-empty")
    if ":" not in text and "," not in text:
        try:
            p = int(text)
        except ValueError:
            raise ConfigurationError(
                f"cluster spec {text!r} is neither a site count nor "
                f"'name:count:capacity' classes"
            ) from None
        return ClusterSpec.uniform(p)
    classes: list[SiteClass] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ConfigurationError(f"empty site class in cluster spec {text!r}")
        fields = chunk.split(":")
        if len(fields) == 2:
            name, count_text = fields
            capacity_text = "1.0"
        elif len(fields) == 3:
            name, count_text, capacity_text = fields
        else:
            raise ConfigurationError(
                f"site class {chunk!r} must be 'name:count[:capacity]'"
            )
        try:
            count = int(count_text)
        except ValueError:
            raise ConfigurationError(
                f"site class {chunk!r}: count {count_text!r} is not an integer"
            ) from None
        try:
            capacity = float(capacity_text)
        except ValueError:
            raise ConfigurationError(
                f"site class {chunk!r}: capacity {capacity_text!r} is not a number"
            ) from None
        classes.append(SiteClass(name=name.strip(), count=count, capacity=capacity))
    return ClusterSpec(tuple(classes))
