"""Core scheduling model and algorithms of the SIGMOD'96 paper.

This subpackage is self-contained (no dependency on the query-plan or
cost-model substrates): it implements work vectors (Section 4.1/5.1), the
preemptable-resource usage model, coarse-grain parallelization
(Section 4), the OPERATORSCHEDULE list-scheduling heuristic (Section 5.3),
suboptimality bounds (Theorem 5.1), the malleable extension (Section 7),
an exact solver for small instances, and a vector-packing ablation grid.

The phase-based TREESCHEDULE algorithm (Section 5.4) lives in
:mod:`repro.core.tree_schedule` but is *not* imported here because it
depends on the plan substrate; import it via :mod:`repro` or directly.
"""

from repro.core.batch import (
    HAVE_NUMPY,
    eq3_makespans_over_epsilon,
    family_congestions,
    lower_bounds_batch,
    pack_least_loaded_batch,
    set_length_batch,
    sum_length,
)
from repro.core.bounds import (
    BoundCertificate,
    certify,
    lower_bound,
    lower_bound_family,
    slowest_operator_time,
    theorem51_coarse_grain_bound,
    theorem51_fixed_degree_bound,
)
from repro.core.cluster import ClusterSpec, SiteClass, parse_cluster_spec
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    clone_work_vectors,
    coarse_grain_degree,
    parallel_time,
    response_optimal_degree,
    total_work_vector,
)
from repro.core.granularity import (
    CommunicationModel,
    granularity_ratio,
    is_coarse_grain,
    processing_area,
)
from repro.core.malleable import (
    CandidateFamily,
    MalleableResult,
    ParallelizationCandidate,
    candidate_parallelizations,
    enumerate_candidate_family,
    malleable_schedule,
    malleable_tree_schedule,
    select_parallelization,
    select_parallelization_batched,
)
from repro.core.operator_schedule import (
    OperatorScheduleResult,
    RootedPlacement,
    operator_schedule,
)
from repro.core.optimal import (
    OptimalResult,
    optimal_malleable_makespan,
    optimal_schedule,
)
from repro.core.resource_model import (
    PERFECT_OVERLAP,
    ZERO_OVERLAP,
    ConvexCombinationOverlap,
    OverlapModel,
    ResourceUsage,
    validate_sequential_time,
)
from repro.core.schedule import OperatorHome, PhasedSchedule, Schedule
from repro.core.site import PlacedClone, Site
from repro.core.skew import (
    skewed_clone_work_vectors,
    skewed_makespan,
    skewed_response_time,
    zipf_weights,
)
from repro.core.placement_heap import SiteHeap
from repro.core.reschedule import (
    RescheduleStats,
    ScheduleDelta,
    reschedule_reference,
    reschedule_schedule,
)
from repro.core.vector_packing import (
    CloneItem,
    PlacementRule,
    SortKey,
    pack_vectors,
    pack_vectors_reference,
)
from repro.core.work_vector import (
    DEFAULT_DIMENSIONALITY,
    Resource,
    WorkVector,
    dominates,
    set_length,
    vector_sum,
)

__all__ = [
    # work_vector
    "WorkVector",
    "Resource",
    "DEFAULT_DIMENSIONALITY",
    "vector_sum",
    "set_length",
    "dominates",
    # resource_model
    "OverlapModel",
    "ConvexCombinationOverlap",
    "PERFECT_OVERLAP",
    "ZERO_OVERLAP",
    "ResourceUsage",
    "validate_sequential_time",
    # cluster
    "ClusterSpec",
    "SiteClass",
    "parse_cluster_spec",
    # granularity
    "CommunicationModel",
    "processing_area",
    "granularity_ratio",
    "is_coarse_grain",
    # cloning
    "OperatorSpec",
    "CoordinatorPolicy",
    "DEFAULT_COORDINATOR_POLICY",
    "clone_work_vectors",
    "total_work_vector",
    "parallel_time",
    "response_optimal_degree",
    "coarse_grain_degree",
    # site / schedule
    "Site",
    "PlacedClone",
    "Schedule",
    "PhasedSchedule",
    "OperatorHome",
    # operator_schedule
    "RootedPlacement",
    "OperatorScheduleResult",
    "operator_schedule",
    # bounds
    "BoundCertificate",
    "certify",
    "lower_bound",
    "lower_bound_family",
    "slowest_operator_time",
    "theorem51_fixed_degree_bound",
    "theorem51_coarse_grain_bound",
    # batch (numpy-gated fast paths)
    "HAVE_NUMPY",
    "sum_length",
    "set_length_batch",
    "lower_bounds_batch",
    "eq3_makespans_over_epsilon",
    "pack_least_loaded_batch",
    "family_congestions",
    # malleable
    "ParallelizationCandidate",
    "CandidateFamily",
    "candidate_parallelizations",
    "enumerate_candidate_family",
    "select_parallelization",
    "select_parallelization_batched",
    "malleable_schedule",
    "malleable_tree_schedule",
    "MalleableResult",
    # optimal
    "OptimalResult",
    "optimal_schedule",
    "optimal_malleable_makespan",
    # vector_packing / placement heap
    "SortKey",
    "PlacementRule",
    "CloneItem",
    "pack_vectors",
    "pack_vectors_reference",
    "SiteHeap",
    # incremental rescheduling
    "ScheduleDelta",
    "RescheduleStats",
    "reschedule_schedule",
    "reschedule_reference",
    # skew (EA1 relaxation)
    "zipf_weights",
    "skewed_clone_work_vectors",
    "skewed_makespan",
    "skewed_response_time",
]
