"""Memory-constrained scheduling: the paper's Section 8 open problem.

Drops assumption A1 (no memory limitations): sites get buffer-memory
capacities, hash tables occupy real bytes from build to probe, and the
memory-aware TREESCHEDULE variant spreads or spills tables that do not
fit, pricing the spill I/O with the Table 2 cost model.
"""

from repro.memory.model import MemoryLedger, MemoryModel, TableCommitment
from repro.memory.scheduler import MemoryAwareResult, memory_aware_tree_schedule
from repro.memory.spill import build_spill_work, probe_spill_work, spill_fraction

__all__ = [
    "MemoryModel",
    "MemoryLedger",
    "TableCommitment",
    "spill_fraction",
    "build_spill_work",
    "probe_spill_work",
    "MemoryAwareResult",
    "memory_aware_tree_schedule",
]
