"""Memory-aware TREESCHEDULE: dropping assumption A1.

This scheduler extends :func:`repro.core.tree_schedule.tree_schedule`
with per-site memory capacities (the paper's Section 8 open problem).
Memory is *non-preemptable*: a hash table occupies real bytes at its home
from its build phase through its probe phase, so the scheduler must make
residency decisions, not just time-sharing decisions.  The policy
implemented here, per phase and per build operator:

1. compute the coarse-grain join-stage degree exactly as TREESCHEDULE
   does;
2. compute the memory conservatively available per site over the table's
   residency interval (all phases from build to probe), assuming the
   worst case that every concurrently planned table could land on the
   same site — this guarantees that *any* placement produced by the list
   scheduler fits, so no re-scheduling pass is needed;
3. if the table does not fit at the chosen degree, first *increase the
   degree* (spreading the table thinner, up to ``P`` — more partitioned
   parallelism is the cheap knob), then *spill* the remainder
   hybrid-hash style (:mod:`repro.memory.spill`), adjusting the build's
   and probe's work vectors with the extra I/O;
4. record the residency in a :class:`~repro.memory.model.MemoryLedger`
   once the phase is placed, and validate the whole ledger at the end.

With ample capacity the result is identical to TREESCHEDULE (tested);
as capacity shrinks, response time degrades monotonically through spill
I/O — never through infeasibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InfeasibleScheduleError, SchedulingError
from repro.core.cloning import (
    DEFAULT_COORDINATOR_POLICY,
    CoordinatorPolicy,
    OperatorSpec,
    coarse_grain_degree,
)
from repro.core.granularity import CommunicationModel
from repro.core.operator_schedule import RootedPlacement, operator_schedule
from repro.core.resource_model import OverlapModel
from repro.core.schedule import OperatorHome, PhasedSchedule
from repro.cost.params import SystemParameters
from repro.memory.model import MemoryLedger, MemoryModel, TableCommitment
from repro.memory.spill import build_spill_work, probe_spill_work, spill_fraction
from repro.plans.operator_tree import OperatorTree
from repro.plans.phases import min_shelf_phases
from repro.plans.physical_ops import OperatorKind, anchor_operator_name
from repro.plans.task_tree import TaskTree

__all__ = ["MemoryAwareResult", "memory_aware_tree_schedule"]


@dataclass
class MemoryAwareResult:
    """Outcome of one memory-aware TREESCHEDULE run.

    Attributes
    ----------
    phased_schedule:
        Per-phase schedules (response time = sum of phase makespans).
    homes, degrees:
        As in ``TreeScheduleResult``.
    ledger:
        The validated memory ledger (inspect residency per site/phase).
    spill_fractions:
        Per-join hybrid-hash spill fraction ``q`` (0 = fully resident).
    """

    phased_schedule: PhasedSchedule
    homes: dict[str, OperatorHome]
    degrees: dict[str, int]
    ledger: MemoryLedger
    spill_fractions: dict[str, float]

    @property
    def response_time(self) -> float:
        """The plan's total (summed-phase) response time."""
        return self.phased_schedule.response_time()

    @property
    def total_spilled_joins(self) -> int:
        """Number of joins with a non-zero spill fraction."""
        return sum(1 for q in self.spill_fractions.values() if q > 0.0)


def memory_aware_tree_schedule(
    op_tree: OperatorTree,
    task_tree: TaskTree,
    *,
    p: int,
    comm: CommunicationModel,
    overlap: OverlapModel,
    memory: MemoryModel,
    params: SystemParameters,
    f: float = 0.7,
    allow_spill: bool = True,
    policy: CoordinatorPolicy = DEFAULT_COORDINATOR_POLICY,
) -> MemoryAwareResult:
    """Schedule an annotated bushy plan under per-site memory capacities.

    Parameters mirror :func:`repro.core.tree_schedule.tree_schedule`
    plus the :class:`MemoryModel` and the :class:`SystemParameters` used
    to price spill I/O.

    With ``allow_spill=False`` the scheduler refuses to spill: a hash
    table that cannot be made resident even at the widest spread raises
    :class:`~repro.exceptions.InfeasibleScheduleError`.  This models
    executors without a hybrid-hash fallback and realizes the [HCY94]
    regime where deep pipelines are "detrimental or even impossible"
    and serialization (``repro.plans.transform.auto_materialize``)
    becomes *necessary* rather than merely an I/O trade-off.
    """
    phases = min_shelf_phases(task_tree)
    num_phases = len(phases)
    phase_of_task = {
        task: i for i, bucket in enumerate(phases) for task in bucket
    }
    ledger = MemoryLedger(p, memory)
    phased = PhasedSchedule()
    homes: dict[str, OperatorHome] = {}
    degrees: dict[str, int] = {}
    spills: dict[str, float] = {}
    adjusted: dict[str, OperatorSpec] = {}

    # Worst-case extra residency per phase from tables planned in the
    # current pass but not yet placed (they could co-locate).
    planned_overlap = [0.0] * num_phases

    for phase_index, phase_tasks in enumerate(phases):
        floating: list[OperatorSpec] = []
        rooted: list[RootedPlacement] = []
        forced: dict[str, int] = {}
        pending_tables: list[tuple[str, float, int]] = []  # name, bytes/site, release

        for task in phase_tasks:
            for op in task.operators:
                spec = adjusted.get(op.name, op.require_spec())
                if op.kind is OperatorKind.BUILD:
                    probe_op = op_tree.probe_of(op.join_id)
                    probe_spec = adjusted.get(
                        probe_op.name, probe_op.require_spec()
                    )
                    stage = OperatorSpec(
                        name=f"stage({op.join_id})",
                        work=spec.work + probe_spec.work,
                        data_volume=spec.data_volume + probe_spec.data_volume,
                    )
                    n = coarse_grain_degree(stage, p, f, comm, overlap, policy)

                    release = phase_of_task[task_tree.task_of(probe_op)]
                    table = memory.table_bytes(op.input_tuples, params.tuple_bytes)
                    avail = min(
                        ledger.min_available(ph) - planned_overlap[ph]
                        for ph in range(phase_index, release + 1)
                    )
                    # Spread the table thinner before spilling.
                    if avail > 0 and table / n > avail:
                        n = min(p, max(n, math.ceil(table / avail)))
                    per_site_budget = max(avail, 0.0)
                    q = spill_fraction(table / n, per_site_budget)
                    if q > 0.0 and not allow_spill:
                        raise InfeasibleScheduleError(
                            f"hash table of {op.join_id} needs "
                            f"{table / n:.0f} B/site at degree {n} but only "
                            f"{per_site_budget:.0f} B/site are free, and "
                            "spilling is disabled; serialize the plan "
                            "(auto_materialize) or add memory"
                        )
                    spills[op.join_id] = q
                    if q > 0.0:
                        build_extra = build_spill_work(q, op.input_tuples, params)
                        spec = OperatorSpec(
                            name=spec.name,
                            work=spec.work + build_extra,
                            data_volume=spec.data_volume,
                        )
                        adjusted[spec.name] = spec
                        probe_extra = probe_spill_work(
                            q, op.input_tuples, probe_op.input_tuples, params
                        )
                        adjusted[probe_op.name] = OperatorSpec(
                            name=probe_spec.name,
                            work=probe_spec.work + probe_extra,
                            data_volume=probe_spec.data_volume,
                        )
                    forced[spec.name] = n
                    resident_per_site = (1.0 - q) * table / n
                    pending_tables.append((spec.name, resident_per_site, release))
                    for ph in range(phase_index, release + 1):
                        planned_overlap[ph] += resident_per_site
                    floating.append(spec)
                elif (anchor := anchor_operator_name(op)) is not None:
                    try:
                        home = homes[anchor]
                    except KeyError:
                        raise SchedulingError(
                            f"{op.name!r} scheduled before its anchor {anchor!r}"
                        ) from None
                    rooted.append(
                        RootedPlacement(spec=spec, site_indices=home.site_indices)
                    )
                else:
                    floating.append(spec)

        result = operator_schedule(
            floating,
            rooted,
            p=p,
            comm=comm,
            overlap=overlap,
            f=f,
            degrees=forced,
            policy=policy,
        )
        label = ",".join(task.task_id for task in phase_tasks)
        phased.append(result.schedule, label)
        homes.update(result.schedule.homes())
        degrees.update(result.degrees)

        # Convert planned residencies into real ledger commitments.
        for name, bytes_per_site, release in pending_tables:
            home = result.schedule.home(name)
            join_id = name[len("build(") : -1]
            ledger.commit(
                TableCommitment(
                    join_id=join_id,
                    site_indices=home.site_indices,
                    bytes_per_site=bytes_per_site,
                    build_phase=phase_index,
                    release_phase=release,
                )
            )
            for ph in range(phase_index, release + 1):
                planned_overlap[ph] -= bytes_per_site

    ledger.validate(num_phases)
    return MemoryAwareResult(
        phased_schedule=phased,
        homes=homes,
        degrees=degrees,
        ledger=ledger,
        spill_fractions=spills,
    )
