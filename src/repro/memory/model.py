"""Memory as a non-preemptable resource (the paper's first open problem).

Section 8: *"Incorporating nonpreemptable resources such as memory
requires an even richer model of parallelization and thus remains an open
question."*  This subpackage implements the natural first step the paper
gestures at — replacing assumption **A1 (no memory limitations)** with
per-site memory capacities:

* each site owns ``capacity_bytes`` of buffer memory;
* the hash table of join ``J`` occupies memory at the build's home from
  the build's phase until the probe's phase completes (the probe needs
  the table resident, Section 5.5);
* a build of degree ``N`` over ``T`` input tuples commits
  ``overhead * T * tuple_bytes / N`` on each home site;
* when a table cannot fit, a *hybrid-hash style spill* writes a fraction
  of both join inputs to disk during the build phase and re-reads them
  during the probe phase (:mod:`repro.memory.spill`).

:class:`MemoryLedger` tracks live commitments per site across phases so a
scheduler can (a) pick degrees that fit and (b) verify that no site ever
over-commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, SchedulingError

__all__ = ["MemoryModel", "MemoryLedger", "TableCommitment"]


@dataclass(frozen=True)
class MemoryModel:
    """Per-site buffer-memory configuration.

    Attributes
    ----------
    capacity_bytes:
        Buffer memory available to hash tables at each site.
    hash_table_overhead:
        Multiplicative space overhead of a hash table over its raw input
        bytes (bucket headers, pointers, fill factor).  1.2 is a common
        engineering estimate.
    """

    capacity_bytes: float
    hash_table_overhead: float = 1.2

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"memory capacity must be > 0, got {self.capacity_bytes}"
            )
        if self.hash_table_overhead < 1.0:
            raise ConfigurationError(
                f"hash table overhead must be >= 1, got {self.hash_table_overhead}"
            )

    def table_bytes(self, input_tuples: int, tuple_bytes: int) -> float:
        """In-memory size of a hash table over ``input_tuples`` tuples."""
        if input_tuples < 0:
            raise ConfigurationError(f"tuple count must be >= 0, got {input_tuples}")
        return self.hash_table_overhead * input_tuples * tuple_bytes


@dataclass
class TableCommitment:
    """One hash table's residency interval and footprint.

    Attributes
    ----------
    join_id:
        The owning join.
    site_indices:
        The build's home (each site holds one partition).
    bytes_per_site:
        Resident bytes per home site (after any spill).
    build_phase:
        Phase index in which the table is built.
    release_phase:
        Phase index after which the table is dropped (the probe's phase).
    """

    join_id: str
    site_indices: tuple[int, ...]
    bytes_per_site: float
    build_phase: int
    release_phase: int


class MemoryLedger:
    """Tracks live hash-table commitments per site across phases."""

    def __init__(self, p: int, model: MemoryModel):
        if p < 1:
            raise SchedulingError(f"number of sites must be >= 1, got {p}")
        self._p = p
        self._model = model
        self._commitments: list[TableCommitment] = []

    @property
    def commitments(self) -> tuple[TableCommitment, ...]:
        """All recorded commitments (including released ones)."""
        return tuple(self._commitments)

    def commit(self, commitment: TableCommitment) -> None:
        """Record a table's residency; validates site indices and phases."""
        for j in commitment.site_indices:
            if not 0 <= j < self._p:
                raise SchedulingError(
                    f"table {commitment.join_id!r}: site {j} outside 0..{self._p - 1}"
                )
        if commitment.release_phase < commitment.build_phase:
            raise SchedulingError(
                f"table {commitment.join_id!r}: released before built"
            )
        if commitment.bytes_per_site < 0:
            raise SchedulingError(
                f"table {commitment.join_id!r}: negative footprint"
            )
        self._commitments.append(commitment)

    def live_bytes(self, site: int, phase: int) -> float:
        """Bytes resident on ``site`` during ``phase``."""
        return sum(
            c.bytes_per_site
            for c in self._commitments
            if site in c.site_indices and c.build_phase <= phase <= c.release_phase
        )

    def peak_live_bytes(self, phase: int) -> float:
        """The most committed site's residency during ``phase``."""
        return max(
            (self.live_bytes(j, phase) for j in range(self._p)), default=0.0
        )

    def available(self, site: int, phase: int) -> float:
        """Free capacity on ``site`` during ``phase`` (can be negative)."""
        return self._model.capacity_bytes - self.live_bytes(site, phase)

    def min_available(self, phase: int) -> float:
        """The tightest site's free capacity during ``phase``.

        Degree selection uses this conservative figure so that *any*
        placement of the new table's partitions fits.
        """
        return min(self.available(j, phase) for j in range(self._p))

    def validate(self, num_phases: int) -> None:
        """Assert no site over-commits in any phase.

        Raises
        ------
        SchedulingError
            If some site's live bytes exceed capacity during some phase.
        """
        for phase in range(num_phases):
            for j in range(self._p):
                live = self.live_bytes(j, phase)
                if live > self._model.capacity_bytes * (1 + 1e-9):
                    raise SchedulingError(
                        f"site {j} over-committed in phase {phase}: "
                        f"{live:.0f} B > {self._model.capacity_bytes:.0f} B"
                    )
