"""Hybrid-hash spill costs for memory-constrained builds.

When a join's hash table cannot fit in the memory available at its home,
a hybrid-hash execution keeps a fraction ``1 - q`` of the table resident
and *spills* the remaining fraction ``q`` of **both** join inputs to
disk: spilled build tuples are written during the build phase and re-read
(and re-built) during the probe phase; the matching fraction of probe
tuples is likewise written on arrival and re-read when its partition's
table is loaded.  (This is the classic Grace/hybrid hash-join recurrence
[Sch90, DG92] specialized to one spill level.)

The extra resource demands per operator, with page size and instruction
costs from Table 2:

* ``build(J)``: write ``q * pages(build_input)`` pages
  (disk time + write-page CPU);
* ``probe(J)``: write ``q * pages(probe_input)`` pages, then re-read
  ``q * (pages(build_input) + pages(probe_input))`` pages and re-hash the
  spilled build tuples (disk time + read/write-page CPU + hash CPU).

These are returned as *additive work vectors* so the cost annotation of
an unconstrained plan can be adjusted without re-deriving it.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.core.work_vector import DEFAULT_DIMENSIONALITY, Resource, WorkVector
from repro.cost.params import SystemParameters

__all__ = ["spill_fraction", "build_spill_work", "probe_spill_work"]


def spill_fraction(table_bytes: float, resident_budget_bytes: float) -> float:
    """Fraction of the table that must spill given a residency budget.

    ``q = max(0, 1 - budget / table)``, clamped to ``[0, 1]``; a
    non-positive budget spills everything.
    """
    if table_bytes < 0:
        raise ConfigurationError(f"table size must be >= 0, got {table_bytes}")
    if table_bytes == 0:
        return 0.0
    if resident_budget_bytes <= 0:
        return 1.0
    return min(1.0, max(0.0, 1.0 - resident_budget_bytes / table_bytes))


def _io_vector(pages: float, params: SystemParameters, instr_per_page: float) -> WorkVector:
    comps = [0.0] * DEFAULT_DIMENSIONALITY
    comps[Resource.CPU] = params.cpu_seconds(pages * instr_per_page)
    comps[Resource.DISK] = pages * params.disk_seconds_per_page
    return WorkVector(comps)


def build_spill_work(
    q: float, build_input_tuples: int, params: SystemParameters
) -> WorkVector:
    """Additional work for ``build(J)`` when fraction ``q`` spills."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"spill fraction must lie in [0, 1], got {q}")
    if build_input_tuples < 0:
        raise ConfigurationError("tuple count must be >= 0")
    write_pages = q * params.pages(build_input_tuples)
    return _io_vector(write_pages, params, params.instr_write_page)


def probe_spill_work(
    q: float,
    build_input_tuples: int,
    probe_input_tuples: int,
    params: SystemParameters,
) -> WorkVector:
    """Additional work for ``probe(J)`` when fraction ``q`` spills.

    Writes the spilled probe partitions, re-reads both spilled inputs,
    and re-hashes the spilled build tuples.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"spill fraction must lie in [0, 1], got {q}")
    if build_input_tuples < 0 or probe_input_tuples < 0:
        raise ConfigurationError("tuple counts must be >= 0")
    build_pages = q * params.pages(build_input_tuples)
    probe_pages = q * params.pages(probe_input_tuples)
    out = _io_vector(probe_pages, params, params.instr_write_page)
    out = out + _io_vector(build_pages + probe_pages, params, params.instr_read_page)
    rehash_cpu = params.cpu_seconds(
        q * build_input_tuples * params.instr_hash_tuple
    )
    return out + WorkVector.unit(DEFAULT_DIMENSIONALITY, Resource.CPU, rehash_cpu)
